#include "barrier/unit.hh"

#include "support/logging.hh"

namespace fb::barrier
{

BarrierUnit::BarrierUnit(int num_processors, int self)
    : _numProcessors(num_processors), _self(self),
      _mask(static_cast<std::size_t>(num_processors)),
      _shadowMask(static_cast<std::size_t>(num_processors))
{
    FB_ASSERT(num_processors > 0, "need at least one processor");
    FB_ASSERT(self >= 0 && self < num_processors,
              "self index out of range");
}

void
BarrierUnit::setMask(std::uint64_t bits)
{
    // A 64-bit immediate can only name processors 0..63; in a larger
    // machine the word form addresses that prefix and clears the rest
    // (the wide all-processors form is setMaskAll()).
    for (int p = 0; p < _numProcessors; ++p) {
        bool value = p < 64 && (bits >> p & 1) != 0 && p != _self;
        _mask.set(static_cast<std::size_t>(p), value);
        _shadowMask.set(static_cast<std::size_t>(p), value);
    }
    ++_maskVersion;
}

void
BarrierUnit::setMaskAll()
{
    for (int p = 0; p < _numProcessors; ++p) {
        const bool value = p != _self;
        _mask.set(static_cast<std::size_t>(p), value);
        _shadowMask.set(static_cast<std::size_t>(p), value);
    }
    ++_maskVersion;
}

void
BarrierUnit::setMaskBit(int processor, bool value)
{
    FB_ASSERT(processor >= 0 && processor < _numProcessors,
              "mask bit out of range");
    if (processor == _self)
        return;  // a processor never synchronizes with itself
    _mask.set(static_cast<std::size_t>(processor), value);
    _shadowMask.set(static_cast<std::size_t>(processor), value);
    ++_maskVersion;
}

void
BarrierUnit::corruptTagBit(int bit)
{
    FB_ASSERT(bit >= 0 && bit < 32, "tag bit out of range");
    _tag ^= std::uint32_t{1} << bit;
    _dirty = true;
    if (_listener != nullptr)
        _listener->unitDirtied(_self);
}

void
BarrierUnit::corruptMaskBit(int processor)
{
    FB_ASSERT(processor >= 0 && processor < _numProcessors,
              "mask bit out of range");
    _mask.set(static_cast<std::size_t>(processor),
              !_mask.test(static_cast<std::size_t>(processor)));
    _dirty = true;
    ++_maskVersion;
    if (_listener != nullptr)
        _listener->unitDirtied(_self);
}

int
BarrierUnit::scrub()
{
    if (!_dirty)
        return 0;
    int corrected = 0;
    if (_tag != _shadowTag) {
        _tag = _shadowTag;
        ++corrected;
    }
    bool mask_corrupt = false;
    for (int p = 0; p < _numProcessors; ++p) {
        auto idx = static_cast<std::size_t>(p);
        if (_mask.test(idx) != _shadowMask.test(idx)) {
            _mask.set(idx, _shadowMask.test(idx));
            mask_corrupt = true;
        }
    }
    if (mask_corrupt) {
        ++corrected;  // count the mask register once, not per bit
        ++_maskVersion;
    }
    _dirty = false;
    return corrected;
}

void
BarrierUnit::arrive()
{
    if (!participating())
        return;
    FB_ASSERT(_state == BarrierState::NonBarrier,
              "arrive() in state " << barrierStateName(_state));
    _state = BarrierState::Ready;
    _stalledThisEpisode = false;
    notifyReady(true);
}

bool
BarrierUnit::mayCross() const
{
    if (!participating())
        return true;
    // A core that never armed this episode (no region instructions
    // executed, e.g. it branched around the region) is simply in
    // NonBarrier and may continue.
    return _state == BarrierState::NonBarrier ||
           _state == BarrierState::Synced;
}

void
BarrierUnit::cross()
{
    if (!participating())
        return;
    if (_state == BarrierState::NonBarrier)
        return;
    FB_ASSERT(_state == BarrierState::Synced,
              "cross() in state " << barrierStateName(_state));
    _state = BarrierState::NonBarrier;
}

void
BarrierUnit::noteStalled()
{
    FB_ASSERT(participating(), "stall without participation");
    FB_ASSERT(_state == BarrierState::Ready ||
                  _state == BarrierState::Stalled,
              "noteStalled() in state " << barrierStateName(_state));
    if (_state == BarrierState::Ready) {
        _state = BarrierState::Stalled;
        if (!_stalledThisEpisode) {
            _stalledThisEpisode = true;
            ++_stalledEpisodes;
        }
    }
}

void
BarrierUnit::deliverSync()
{
    FB_ASSERT(_state == BarrierState::Ready ||
                  _state == BarrierState::Stalled,
              "deliverSync() in state " << barrierStateName(_state));
    _state = BarrierState::Synced;
    ++_episodes;
    notifyReady(false);
}

void
BarrierUnit::reset()
{
    // The listener (network) rebuilds its sparse sets wholesale on
    // reset/decode, so no edge notification is needed here.
    _state = BarrierState::NonBarrier;
    _tag = 0;
    _epoch = 0;
    _mask.clearAll();
    _shadowTag = 0;
    _shadowMask.clearAll();
    _dirty = false;
    ++_maskVersion;
    _episodes = 0;
    _stalledEpisodes = 0;
    _stallCycles = 0;
    _stalledThisEpisode = false;
}

void
BarrierUnit::encodeState(snapshot::Encoder &e) const
{
    e.u8(static_cast<std::uint8_t>(_state));
    e.u32(_tag);
    e.u32(_epoch);
    e.bits(_mask);
    e.u32(_shadowTag);
    e.bits(_shadowMask);
    e.b(_dirty);
    e.u64(_episodes);
    e.u64(_stalledEpisodes);
    e.u64(_stallCycles);
    e.b(_stalledThisEpisode);
}

bool
BarrierUnit::decodeState(snapshot::Decoder &d)
{
    _state = static_cast<BarrierState>(d.u8());
    _tag = d.u32();
    _epoch = d.u32();
    d.bits(_mask);
    _shadowTag = d.u32();
    d.bits(_shadowMask);
    _dirty = d.b();
    _episodes = d.u64();
    _stalledEpisodes = d.u64();
    _stallCycles = d.u64();
    _stalledThisEpisode = d.b();
    ++_maskVersion;
    return d.ok() &&
           _mask.size() == static_cast<std::size_t>(_numProcessors) &&
           _shadowMask.size() == static_cast<std::size_t>(_numProcessors);
}

} // namespace fb::barrier
