#include "barrier/topology.hh"

#include <cstdlib>
#include <sstream>

#include "support/logging.hh"

namespace fb::barrier
{

int
Topology::spanLevels(std::size_t lo, std::size_t hi) const
{
    FB_ASSERT(lo <= hi, "span range inverted");
    switch (kind) {
      case Kind::Flat:
        return 0;
      case Kind::Tree: {
        FB_ASSERT(param >= 2, "tree arity must be >= 2");
        const std::size_t arity = static_cast<std::size_t>(param);
        int levels = 0;
        std::size_t block = 1;
        while (lo / block != hi / block) {
            block *= arity;
            ++levels;
        }
        return levels;
      }
      case Kind::Cluster: {
        FB_ASSERT(param >= 2, "cluster size must be >= 2");
        const std::size_t size = static_cast<std::size_t>(param);
        if (lo == hi)
            return 0;
        return lo / size == hi / size ? 1 : 2;
      }
    }
    panic("unknown topology kind");
}

std::string
Topology::toString() const
{
    std::ostringstream oss;
    switch (kind) {
      case Kind::Flat:
        return "flat";
      case Kind::Tree:
        oss << "tree:" << param;
        break;
      case Kind::Cluster:
        oss << "cluster:" << param;
        break;
    }
    if (levelLatency != 1)
        oss << ":" << levelLatency;
    return oss.str();
}

bool
Topology::parse(const std::string &text, Topology &out)
{
    if (text == "flat") {
        out = Topology{};
        return true;
    }

    std::size_t colon = text.find(':');
    if (colon == std::string::npos)
        return false;
    const std::string name = text.substr(0, colon);

    Topology t;
    if (name == "tree")
        t.kind = Kind::Tree;
    else if (name == "cluster")
        t.kind = Kind::Cluster;
    else
        return false;

    const std::string rest = text.substr(colon + 1);
    const std::size_t colon2 = rest.find(':');
    const std::string param_str =
        colon2 == std::string::npos ? rest : rest.substr(0, colon2);

    char *end = nullptr;
    long param = std::strtol(param_str.c_str(), &end, 10);
    if (end == param_str.c_str() || *end != '\0' || param < 2)
        return false;
    t.param = static_cast<int>(param);

    if (colon2 != std::string::npos) {
        const std::string lat_str = rest.substr(colon2 + 1);
        long lat = std::strtol(lat_str.c_str(), &end, 10);
        if (end == lat_str.c_str() || *end != '\0' || lat < 1)
            return false;
        t.levelLatency = static_cast<std::uint32_t>(lat);
    }

    out = t;
    return true;
}

} // namespace fb::barrier
