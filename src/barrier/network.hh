/**
 * @file
 * The broadcast synchronization network connecting all barrier units.
 */

#ifndef FB_BARRIER_NETWORK_HH
#define FB_BARRIER_NETWORK_HH

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "barrier/topology.hh"
#include "barrier/unit.hh"
#include "snapshot/codec.hh"
#include "support/hibitset.hh"
#include "support/stats.hh"

namespace fb::barrier
{

/**
 * Hook that can hide a processor's broadcast ready pulse from the
 * AND network for a cycle (fault injection lives in fb::fault, which
 * depends on this library, so the network only sees the abstract
 * interface). A suppressed pulse is invisible to *every* AND input,
 * including the owning processor's own group logic — the wire itself
 * is glitched, so all observers agree, preserving the simultaneous-
 * delivery property even under faults.
 */
class ReadyPulseFilter
{
  public:
    virtual ~ReadyPulseFilter() = default;

    /** True if processor @p p's ready pulse is hidden at cycle @p now. */
    virtual bool suppress(int p, std::uint64_t now) const = 0;
};

/**
 * Diagnosis of a wedged barrier network: which processors are stuck
 * waiting, their FSM state, tag and epoch, and which mask members
 * keep each AND unsatisfied.
 */
struct DeadlockReport
{
    struct Entry
    {
        int proc = -1;
        BarrierState state = BarrierState::NonBarrier;
        std::uint32_t tag = 0;
        std::uint32_t epoch = 0;
        /** Mask members whose signal/tag/epoch keeps the AND false. */
        std::vector<int> unsatisfied;
    };

    bool deadlocked = false;
    std::vector<Entry> stuck;

    /** Multi-line human-readable rendering (empty if not deadlocked). */
    std::string toString() const;
};

/**
 * Models the dedicated wires of the hardware fuzzy barrier: every
 * processor broadcasts its readiness signal and tag; identical
 * combinational logic in every processor evaluates whether its
 * synchronization group is complete. Because all processors share a
 * common clock, all members of a group observe the completed AND in
 * the same cycle and "simultaneously discover the occurrence of
 * synchronization" (paper section 6).
 *
 * The network may be organized hierarchically (Topology): completion
 * is still the same combinational AND, but delivery pays an extra
 * 2 * span * level_latency cycles for the subtree the group spans.
 * A flat topology is bit-identical to the paper's single-level model.
 *
 * Per-cycle cost is O(active), not O(processors): the network tracks
 * the set of ready units, pending deliveries and dirty registers in
 * hierarchical bitsets maintained on unit state edges, so evaluate()
 * touches only units that are actually participating this cycle.
 *
 * Synchronization never touches shared memory, so the network also
 * serves experiment E8: it counts sync events so the benches can show
 * zero hot-spot memory traffic for the hardware mechanism.
 */
class BarrierNetwork : public UnitEventListener
{
  public:
    /**
     * Create @p num_processors barrier units.
     *
     * @param sync_latency cycles between a group's AND becoming true
     *        and the members observing synchronization — the
     *        propagation delay of the broadcast wires. Section 6
     *        notes the interconnect grows with the processor count;
     *        larger machines would pay more here. All members still
     *        observe the delivery in the same cycle.
     * @param topology shape of the synchronization wires; non-flat
     *        shapes add per-level propagation latency on top of
     *        @p sync_latency.
     */
    explicit BarrierNetwork(int num_processors,
                            std::uint32_t sync_latency = 0,
                            Topology topology = {});

    /** Number of processors. */
    int numProcessors() const { return static_cast<int>(_units.size()); }

    /** The network's topology. */
    const Topology &topology() const { return _topology; }

    /** Access processor @p p's unit. */
    BarrierUnit &unit(int p);
    const BarrierUnit &unit(int p) const;

    /**
     * Evaluate the combinational sync logic for cycle @p now.
     * For every participating, ready processor p, synchronization is
     * delivered iff every processor q in p's mask is ready with a
     * matching tag — the group's propagation latency after the AND
     * first became true. The evaluation is two-phase (signals are
     * latched, then sync is delivered), so all members of a group
     * synchronize in the same call, exactly like the common-clock
     * hardware.
     *
     * @return number of processors that synchronized this cycle.
     */
    int evaluate(std::uint64_t now = 0);

    /** True if some group's sync is in flight (latency not elapsed).
     * The machine counts this as progress for deadlock detection. */
    bool deliveryPending() const { return !_pendingSet.empty(); }

    /** True if processor @p p specifically has a sync in flight. */
    bool deliveryPendingFor(int p) const;

    /**
     * Earliest cycle at which an in-flight synchronization delivers
     * (UINT64_MAX when none is pending). Lower bound used by the
     * fast-forward core; delivery still happens only via evaluate().
     */
    std::uint64_t nextDeliveryCycle() const;

    /** Cycle processor @p p's pending sync delivers (UINT64_MAX when
     * none is in flight) — used for private-read horizons. */
    std::uint64_t deliveryCycleFor(int p) const;

    /**
     * Processors delivered synchronization by the most recent
     * evaluate() call, in ascending processor order. Each delivery
     * increments the unit's episode counter, so this is exactly the
     * set whose episodes() advanced this cycle.
     */
    const std::vector<int> &delivered() const { return _delivered; }

    /**
     * Units currently asserting their ready signal (Ready or Stalled),
     * maintained on state edges. The watchdog iterates this instead
     * of scanning every unit per cycle.
     */
    const HiBitset &readySet() const { return _readySet; }

    /** Completed group synchronizations (each group counts once). */
    std::uint64_t syncEvents() const { return _syncEvents; }

    /**
     * Install (or clear, with nullptr) the ready-pulse filter. The
     * filter is consulted on every AND evaluation; it is not owned.
     */
    void setPulseFilter(const ReadyPulseFilter *filter)
    {
        _filter = filter;
    }

    /**
     * Processor @p p's readiness signal as seen on the broadcast
     * wires at cycle @p now: asserted by the unit and not suppressed
     * by the pulse filter.
     */
    bool signalVisible(int p, std::uint64_t now) const;

    /** Register corruptions corrected by the per-cycle ECC scrub. */
    std::uint64_t correctedFaults() const { return _correctedFaults; }

    /**
     * True if every participating non-crossed processor is stalled or
     * ready and none can make progress — used with processor halt
     * status for deadlock detection (the Fig. 2 scenario).
     */
    bool wouldDeadlock(const std::vector<bool> &halted,
                       std::uint64_t now = 0) const;

    /**
     * Like wouldDeadlock() but with a full diagnosis: every stuck
     * processor's FSM state, tag, epoch and the mask members that
     * keep its AND unsatisfied.
     */
    DeadlockReport analyzeDeadlock(const std::vector<bool> &halted,
                                   std::uint64_t now = 0) const;

    /**
     * Return the network and every unit to its construction-time
     * state under a (possibly different) propagation delay and
     * topology — machine reuse. The processor count is structural and
     * stays fixed. Any installed pulse filter is cleared.
     */
    void reset(std::uint32_t sync_latency, Topology topology = {});

    /**
     * Serialize all unit state plus in-flight deliveries and counters.
     * Per-call scratch (the phase-1 latch and the delivered list) is
     * not captured: it is rebuilt by the next evaluate(); the sparse
     * ready/pending/scrub sets are derived state, rebuilt on decode.
     */
    void encodeState(snapshot::Encoder &e) const;

    /** Restore state captured with encodeState(). */
    bool decodeState(snapshot::Decoder &d);

    // UnitEventListener — called by the units on state edges.
    void readySignalChanged(int self, bool ready) override;
    void unitDirtied(int self) override;

  private:
    /** Derived per-unit values keyed on the unit's mask version. */
    struct UnitCache
    {
        std::uint64_t version = std::numeric_limits<std::uint64_t>::max();
        std::uint64_t memberHash = 0;  ///< hash of (mask | self)
        std::uint64_t latency = 0;     ///< completion-to-delivery cycles
        std::size_t lo = 0;            ///< lowest group member
        std::size_t hi = 0;            ///< highest group member
    };

    bool groupComplete(int p, std::uint64_t now) const;
    const UnitCache &cacheFor(int p);
    bool sameMemberSet(int p, int q) const;
    void rebuildSets();

    std::vector<BarrierUnit> _units;
    std::uint32_t _syncLatency;
    Topology _topology;
    /** Cycle at which processor p's pending sync delivers
     * (UINT64_MAX = none). */
    std::vector<std::uint64_t> _deliverAt;
    /** Units asserting readySignal(), maintained on state edges. */
    HiBitset _readySet;
    /** Units with a corrupted (dirty) register awaiting scrub. */
    HiBitset _scrubSet;
    /** Units with _deliverAt != none (the in-flight deliveries). */
    HiBitset _pendingSet;
    /** Scratch: this cycle's visible wires (ready minus suppressed). */
    HiBitset _visibleSet;
    /** Scratch: units whose group AND latched true this cycle. */
    HiBitset _completeSet;
    /** Scratch: phase-2 worklist (pending | complete). */
    HiBitset _phase2Set;
    std::vector<UnitCache> _unitCache;
    /** Processors delivered by the latest evaluate(), ascending. */
    std::vector<int> _delivered;
    std::uint64_t _syncEvents = 0;
    std::uint64_t _correctedFaults = 0;
    const ReadyPulseFilter *_filter = nullptr;
};

} // namespace fb::barrier

#endif // FB_BARRIER_NETWORK_HH
