/**
 * @file
 * The broadcast synchronization network connecting all barrier units.
 */

#ifndef FB_BARRIER_NETWORK_HH
#define FB_BARRIER_NETWORK_HH

#include <memory>
#include <vector>

#include "barrier/unit.hh"
#include "support/stats.hh"

namespace fb::barrier
{

/**
 * Models the dedicated wires of the hardware fuzzy barrier: every
 * processor broadcasts its readiness signal and tag; identical
 * combinational logic in every processor evaluates whether its
 * synchronization group is complete. Because all processors share a
 * common clock, all members of a group observe the completed AND in
 * the same cycle and "simultaneously discover the occurrence of
 * synchronization" (paper section 6).
 *
 * Synchronization never touches shared memory, so the network also
 * serves experiment E8: it counts sync events so the benches can show
 * zero hot-spot memory traffic for the hardware mechanism.
 */
class BarrierNetwork
{
  public:
    /**
     * Create @p num_processors barrier units.
     *
     * @param sync_latency cycles between a group's AND becoming true
     *        and the members observing synchronization — the
     *        propagation delay of the broadcast wires. Section 6
     *        notes the interconnect grows with the processor count;
     *        larger machines would pay more here. All members still
     *        observe the delivery in the same cycle.
     */
    explicit BarrierNetwork(int num_processors,
                            std::uint32_t sync_latency = 0);

    /** Number of processors. */
    int numProcessors() const { return static_cast<int>(_units.size()); }

    /** Access processor @p p's unit. */
    BarrierUnit &unit(int p);
    const BarrierUnit &unit(int p) const;

    /**
     * Evaluate the combinational sync logic for cycle @p now.
     * For every participating, ready processor p, synchronization is
     * delivered iff every processor q in p's mask is ready with a
     * matching tag — sync_latency cycles after the AND first became
     * true. The evaluation is two-phase (signals are latched, then
     * sync is delivered), so all members of a group synchronize in
     * the same call, exactly like the common-clock hardware.
     *
     * @return number of processors that synchronized this cycle.
     */
    int evaluate(std::uint64_t now = 0);

    /** True if some group's sync is in flight (latency not elapsed).
     * The machine counts this as progress for deadlock detection. */
    bool deliveryPending() const;

    /** Completed group synchronizations (each group counts once). */
    std::uint64_t syncEvents() const { return _syncEvents; }

    /**
     * True if every participating non-crossed processor is stalled or
     * ready and none can make progress — used with processor halt
     * status for deadlock detection (the Fig. 2 scenario).
     */
    bool wouldDeadlock(const std::vector<bool> &halted) const;

  private:
    bool groupComplete(int p) const;

    std::vector<BarrierUnit> _units;
    std::uint32_t _syncLatency;
    /** Cycle at which processor p's pending sync delivers
     * (UINT64_MAX = none). */
    std::vector<std::uint64_t> _deliverAt;
    std::uint64_t _syncEvents = 0;
};

} // namespace fb::barrier

#endif // FB_BARRIER_NETWORK_HH
