/**
 * @file
 * The broadcast synchronization network connecting all barrier units.
 */

#ifndef FB_BARRIER_NETWORK_HH
#define FB_BARRIER_NETWORK_HH

#include <memory>
#include <string>
#include <vector>

#include "barrier/unit.hh"
#include "snapshot/codec.hh"
#include "support/stats.hh"

namespace fb::barrier
{

/**
 * Hook that can hide a processor's broadcast ready pulse from the
 * AND network for a cycle (fault injection lives in fb::fault, which
 * depends on this library, so the network only sees the abstract
 * interface). A suppressed pulse is invisible to *every* AND input,
 * including the owning processor's own group logic — the wire itself
 * is glitched, so all observers agree, preserving the simultaneous-
 * delivery property even under faults.
 */
class ReadyPulseFilter
{
  public:
    virtual ~ReadyPulseFilter() = default;

    /** True if processor @p p's ready pulse is hidden at cycle @p now. */
    virtual bool suppress(int p, std::uint64_t now) const = 0;
};

/**
 * Diagnosis of a wedged barrier network: which processors are stuck
 * waiting, their FSM state, tag and epoch, and which mask members
 * keep each AND unsatisfied.
 */
struct DeadlockReport
{
    struct Entry
    {
        int proc = -1;
        BarrierState state = BarrierState::NonBarrier;
        std::uint32_t tag = 0;
        std::uint32_t epoch = 0;
        /** Mask members whose signal/tag/epoch keeps the AND false. */
        std::vector<int> unsatisfied;
    };

    bool deadlocked = false;
    std::vector<Entry> stuck;

    /** Multi-line human-readable rendering (empty if not deadlocked). */
    std::string toString() const;
};

/**
 * Models the dedicated wires of the hardware fuzzy barrier: every
 * processor broadcasts its readiness signal and tag; identical
 * combinational logic in every processor evaluates whether its
 * synchronization group is complete. Because all processors share a
 * common clock, all members of a group observe the completed AND in
 * the same cycle and "simultaneously discover the occurrence of
 * synchronization" (paper section 6).
 *
 * Synchronization never touches shared memory, so the network also
 * serves experiment E8: it counts sync events so the benches can show
 * zero hot-spot memory traffic for the hardware mechanism.
 */
class BarrierNetwork
{
  public:
    /**
     * Create @p num_processors barrier units.
     *
     * @param sync_latency cycles between a group's AND becoming true
     *        and the members observing synchronization — the
     *        propagation delay of the broadcast wires. Section 6
     *        notes the interconnect grows with the processor count;
     *        larger machines would pay more here. All members still
     *        observe the delivery in the same cycle.
     */
    explicit BarrierNetwork(int num_processors,
                            std::uint32_t sync_latency = 0);

    /** Number of processors. */
    int numProcessors() const { return static_cast<int>(_units.size()); }

    /** Access processor @p p's unit. */
    BarrierUnit &unit(int p);
    const BarrierUnit &unit(int p) const;

    /**
     * Evaluate the combinational sync logic for cycle @p now.
     * For every participating, ready processor p, synchronization is
     * delivered iff every processor q in p's mask is ready with a
     * matching tag — sync_latency cycles after the AND first became
     * true. The evaluation is two-phase (signals are latched, then
     * sync is delivered), so all members of a group synchronize in
     * the same call, exactly like the common-clock hardware.
     *
     * @return number of processors that synchronized this cycle.
     */
    int evaluate(std::uint64_t now = 0);

    /** True if some group's sync is in flight (latency not elapsed).
     * The machine counts this as progress for deadlock detection. */
    bool deliveryPending() const;

    /** True if processor @p p specifically has a sync in flight. */
    bool deliveryPendingFor(int p) const;

    /**
     * Earliest cycle at which an in-flight synchronization delivers
     * (UINT64_MAX when none is pending). Lower bound used by the
     * fast-forward core; delivery still happens only via evaluate().
     */
    std::uint64_t nextDeliveryCycle() const;

    /**
     * Processors delivered synchronization by the most recent
     * evaluate() call, in ascending processor order. Each delivery
     * increments the unit's episode counter, so this is exactly the
     * set whose episodes() advanced this cycle.
     */
    const std::vector<int> &delivered() const { return _delivered; }

    /** Completed group synchronizations (each group counts once). */
    std::uint64_t syncEvents() const { return _syncEvents; }

    /**
     * Install (or clear, with nullptr) the ready-pulse filter. The
     * filter is consulted on every AND evaluation; it is not owned.
     */
    void setPulseFilter(const ReadyPulseFilter *filter)
    {
        _filter = filter;
    }

    /**
     * Processor @p p's readiness signal as seen on the broadcast
     * wires at cycle @p now: asserted by the unit and not suppressed
     * by the pulse filter.
     */
    bool signalVisible(int p, std::uint64_t now) const;

    /** Register corruptions corrected by the per-cycle ECC scrub. */
    std::uint64_t correctedFaults() const { return _correctedFaults; }

    /**
     * True if every participating non-crossed processor is stalled or
     * ready and none can make progress — used with processor halt
     * status for deadlock detection (the Fig. 2 scenario).
     */
    bool wouldDeadlock(const std::vector<bool> &halted,
                       std::uint64_t now = 0) const;

    /**
     * Like wouldDeadlock() but with a full diagnosis: every stuck
     * processor's FSM state, tag, epoch and the mask members that
     * keep its AND unsatisfied.
     */
    DeadlockReport analyzeDeadlock(const std::vector<bool> &halted,
                                   std::uint64_t now = 0) const;

    /**
     * Return the network and every unit to its construction-time
     * state under a (possibly different) propagation delay — machine
     * reuse. The processor count is structural and stays fixed. Any
     * installed pulse filter is cleared.
     */
    void reset(std::uint32_t sync_latency);

    /**
     * Serialize all unit state plus in-flight deliveries and counters.
     * Per-call scratch (the phase-1 latch and the delivered list) is
     * not captured: it is rebuilt by the next evaluate().
     */
    void encodeState(snapshot::Encoder &e) const;

    /** Restore state captured with encodeState(). */
    bool decodeState(snapshot::Decoder &d);

  private:
    bool groupComplete(int p, std::uint64_t now) const;

    std::vector<BarrierUnit> _units;
    std::uint32_t _syncLatency;
    /** Cycle at which processor p's pending sync delivers
     * (UINT64_MAX = none). */
    std::vector<std::uint64_t> _deliverAt;
    /** Scratch for evaluate()'s phase-1 latch (hoisted allocation). */
    std::vector<bool> _complete;
    /** Per-cycle latch of each broadcast wire (visibility, tag,
     * epoch). Every observer's AND term reads the same wire, so
     * evaluate() samples each signal once per processor instead of
     * once per (observer, member) pair. Scratch, not serialized. */
    std::vector<char> _wireVisible;
    std::vector<std::uint32_t> _wireTag;
    std::vector<std::uint32_t> _wireEpoch;
    /** Processors delivered by the latest evaluate(), ascending. */
    std::vector<int> _delivered;
    std::uint64_t _syncEvents = 0;
    std::uint64_t _correctedFaults = 0;
    const ReadyPulseFilter *_filter = nullptr;
};

} // namespace fb::barrier

#endif // FB_BARRIER_NETWORK_HH
