#include "barrier/network.hh"

#include <limits>

#include "support/logging.hh"

namespace fb::barrier
{

BarrierNetwork::BarrierNetwork(int num_processors,
                               std::uint32_t sync_latency)
    : _syncLatency(sync_latency),
      _deliverAt(static_cast<std::size_t>(num_processors),
                 std::numeric_limits<std::uint64_t>::max())
{
    FB_ASSERT(num_processors > 0, "need at least one processor");
    _units.reserve(static_cast<std::size_t>(num_processors));
    for (int p = 0; p < num_processors; ++p)
        _units.emplace_back(num_processors, p);
}

BarrierUnit &
BarrierNetwork::unit(int p)
{
    FB_ASSERT(p >= 0 && p < numProcessors(), "processor index " << p
                                                                << " bad");
    return _units[static_cast<std::size_t>(p)];
}

const BarrierUnit &
BarrierNetwork::unit(int p) const
{
    FB_ASSERT(p >= 0 && p < numProcessors(), "processor index " << p
                                                                << " bad");
    return _units[static_cast<std::size_t>(p)];
}

bool
BarrierNetwork::groupComplete(int p) const
{
    const BarrierUnit &u = _units[static_cast<std::size_t>(p)];
    if (!u.readySignal())
        return false;
    for (int q = 0; q < numProcessors(); ++q) {
        if (!u.mask().test(static_cast<std::size_t>(q)))
            continue;
        const BarrierUnit &other = _units[static_cast<std::size_t>(q)];
        if (!other.readySignal() || other.tag() != u.tag())
            return false;
    }
    return true;
}

int
BarrierNetwork::evaluate(std::uint64_t now)
{
    constexpr std::uint64_t none =
        std::numeric_limits<std::uint64_t>::max();

    // Phase 1: latch which processors see a complete group, based on
    // this cycle's broadcast signals, and start the propagation
    // clock for groups that just completed.
    std::vector<bool> complete(static_cast<std::size_t>(numProcessors()));
    for (int p = 0; p < numProcessors(); ++p) {
        complete[static_cast<std::size_t>(p)] = groupComplete(p);
        auto &at = _deliverAt[static_cast<std::size_t>(p)];
        if (complete[static_cast<std::size_t>(p)] && at == none)
            at = now + _syncLatency;
    }

    // Phase 2: deliver synchronization simultaneously once the
    // broadcast has propagated.
    int delivered = 0;
    bool any_event = false;
    for (int p = 0; p < numProcessors(); ++p) {
        auto &at = _deliverAt[static_cast<std::size_t>(p)];
        if (complete[static_cast<std::size_t>(p)] && at != none &&
            now >= at) {
            _units[static_cast<std::size_t>(p)].deliverSync();
            at = none;
            ++delivered;
            any_event = true;
        }
    }
    if (any_event)
        ++_syncEvents;
    return delivered;
}

bool
BarrierNetwork::deliveryPending() const
{
    for (auto at : _deliverAt) {
        if (at != std::numeric_limits<std::uint64_t>::max())
            return true;
    }
    return false;
}

bool
BarrierNetwork::wouldDeadlock(const std::vector<bool> &halted) const
{
    // Deadlock: at least one processor is waiting (ready or stalled),
    // every non-halted processor is waiting, and no waiting group is
    // complete. Halted partners can never arrive, and mutual waits
    // with mismatched tags (Fig. 2) never resolve.
    bool any_waiting = false;
    for (int p = 0; p < numProcessors(); ++p) {
        const BarrierUnit &u = _units[static_cast<std::size_t>(p)];
        if (halted[static_cast<std::size_t>(p)])
            continue;
        if (!u.readySignal())
            return false;  // someone can still make progress
        any_waiting = true;
        if (groupComplete(p))
            return false;  // sync will be delivered
    }
    return any_waiting;
}

} // namespace fb::barrier
