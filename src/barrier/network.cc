#include "barrier/network.hh"

#include <algorithm>
#include <limits>
#include <sstream>

#include "snapshot/format.hh"
#include "support/logging.hh"

namespace fb::barrier
{

namespace
{
constexpr std::uint64_t kNone = std::numeric_limits<std::uint64_t>::max();
} // namespace

std::string
DeadlockReport::toString() const
{
    if (!deadlocked)
        return {};
    std::ostringstream oss;
    oss << "barrier deadlock: " << stuck.size()
        << " processor(s) stuck\n";
    for (const Entry &e : stuck) {
        oss << "  cpu" << e.proc << ": state="
            << barrierStateName(e.state) << " tag=" << e.tag
            << " epoch=" << e.epoch << " waiting-on={";
        for (std::size_t i = 0; i < e.unsatisfied.size(); ++i) {
            if (i)
                oss << ",";
            oss << "cpu" << e.unsatisfied[i];
        }
        oss << "}\n";
    }
    return oss.str();
}

BarrierNetwork::BarrierNetwork(int num_processors,
                               std::uint32_t sync_latency,
                               Topology topology)
    : _syncLatency(sync_latency), _topology(topology),
      _deliverAt(static_cast<std::size_t>(num_processors), kNone),
      _readySet(static_cast<std::size_t>(num_processors)),
      _scrubSet(static_cast<std::size_t>(num_processors)),
      _pendingSet(static_cast<std::size_t>(num_processors)),
      _visibleSet(static_cast<std::size_t>(num_processors)),
      _completeSet(static_cast<std::size_t>(num_processors)),
      _phase2Set(static_cast<std::size_t>(num_processors)),
      _unitCache(static_cast<std::size_t>(num_processors))
{
    FB_ASSERT(num_processors > 0, "need at least one processor");
    _delivered.reserve(static_cast<std::size_t>(num_processors));
    _units.reserve(static_cast<std::size_t>(num_processors));
    for (int p = 0; p < num_processors; ++p)
        _units.emplace_back(num_processors, p);
    // The unit vector is sized once and never reallocates, so the
    // listener back-pointers stay valid for the network's lifetime.
    for (BarrierUnit &u : _units)
        u.setListener(this);
}

void
BarrierNetwork::reset(std::uint32_t sync_latency, Topology topology)
{
    _syncLatency = sync_latency;
    _topology = topology;
    for (BarrierUnit &u : _units)
        u.reset();
    std::fill(_deliverAt.begin(), _deliverAt.end(), kNone);
    for (UnitCache &c : _unitCache)
        c = UnitCache{};
    rebuildSets();
    _completeSet.clearAll();
    _delivered.clear();
    _syncEvents = 0;
    _correctedFaults = 0;
    _filter = nullptr;
}

void
BarrierNetwork::readySignalChanged(int self, bool ready)
{
    if (ready)
        _readySet.set(static_cast<std::size_t>(self));
    else
        _readySet.clear(static_cast<std::size_t>(self));
}

void
BarrierNetwork::unitDirtied(int self)
{
    _scrubSet.set(static_cast<std::size_t>(self));
}

void
BarrierNetwork::rebuildSets()
{
    _readySet.clearAll();
    _scrubSet.clearAll();
    _pendingSet.clearAll();
    for (std::size_t p = 0; p < _units.size(); ++p) {
        if (_units[p].readySignal())
            _readySet.set(p);
        if (_deliverAt[p] != kNone)
            _pendingSet.set(p);
    }
    // Dirty registers are not serialized as a set; conservatively
    // scrub every unit once after a rebuild. scrub() is a no-op on
    // clean units and the dirty flag itself IS serialized, so this
    // reproduces the old every-unit scrub exactly for the first
    // post-restore evaluation.
    for (std::size_t p = 0; p < _units.size(); ++p)
        _scrubSet.set(p);
}

BarrierUnit &
BarrierNetwork::unit(int p)
{
    FB_ASSERT(p >= 0 && p < numProcessors(), "processor index " << p
                                                                << " bad");
    return _units[static_cast<std::size_t>(p)];
}

const BarrierUnit &
BarrierNetwork::unit(int p) const
{
    FB_ASSERT(p >= 0 && p < numProcessors(), "processor index " << p
                                                                << " bad");
    return _units[static_cast<std::size_t>(p)];
}

bool
BarrierNetwork::signalVisible(int p, std::uint64_t now) const
{
    const BarrierUnit &u = _units[static_cast<std::size_t>(p)];
    if (!u.readySignal())
        return false;
    return _filter == nullptr || !_filter->suppress(p, now);
}

bool
BarrierNetwork::groupComplete(int p, std::uint64_t now) const
{
    const BarrierUnit &u = _units[static_cast<std::size_t>(p)];
    // A suppressed pulse vanishes from the wire itself, so the owner's
    // own AND input goes dark too — every observer sees the same
    // signal and the group stays un-synchronized as a whole.
    if (!signalVisible(p, now))
        return false;
    bool complete = true;
    u.mask().forEachSet([&](std::size_t q) {
        if (!complete)
            return;
        const BarrierUnit &other = _units[q];
        if (!signalVisible(static_cast<int>(q), now) ||
            other.tag() != u.tag() || other.epoch() != u.epoch())
            complete = false;
    });
    return complete;
}

const BarrierNetwork::UnitCache &
BarrierNetwork::cacheFor(int p)
{
    const auto sp = static_cast<std::size_t>(p);
    UnitCache &c = _unitCache[sp];
    const BarrierUnit &u = _units[sp];
    if (c.version == u.maskVersion())
        return c;

    const BitVector &mask = u.mask();
    const std::size_t first = mask.firstSet();
    const std::size_t last = mask.lastSet();
    c.lo = std::min(first, sp);  // firstSet() == size when empty
    c.hi = last == mask.size() ? sp : std::max(last, sp);
    c.latency = _syncLatency + _topology.extraLatency(c.lo, c.hi);

    // Hash the member set (mask | self) so phase 1 can cheaply test
    // whether two units watch the same group; equality is confirmed
    // with a full word compare before it is relied upon.
    snapshot::Fnv1a h;
    const std::size_t self_word = sp / 64;
    const std::uint64_t self_bit = std::uint64_t{1} << (sp % 64);
    for (std::size_t i = 0; i < mask.wordCount(); ++i) {
        std::uint64_t w = mask.word(i);
        if (i == self_word)
            w |= self_bit;
        h.mix(w);
    }
    c.memberHash = h.value();
    c.version = u.maskVersion();
    return c;
}

bool
BarrierNetwork::sameMemberSet(int p, int q) const
{
    const BitVector &mp = _units[static_cast<std::size_t>(p)].mask();
    const BitVector &mq = _units[static_cast<std::size_t>(q)].mask();
    const auto sp = static_cast<std::size_t>(p);
    const auto sq = static_cast<std::size_t>(q);
    for (std::size_t i = 0; i < mp.wordCount(); ++i) {
        std::uint64_t wp = mp.word(i);
        std::uint64_t wq = mq.word(i);
        if (i == sp / 64)
            wp |= std::uint64_t{1} << (sp % 64);
        if (i == sq / 64)
            wq |= std::uint64_t{1} << (sq % 64);
        if (wp != wq)
            return false;
    }
    return true;
}

int
BarrierNetwork::evaluate(std::uint64_t now)
{
    // ECC scrub: restore any tag/mask register a fault corrupted
    // since the last evaluation. Corruption events register the unit
    // in the scrub set, so the fault-free path never touches a unit.
    if (!_scrubSet.empty()) {
        _scrubSet.forEach([&](std::size_t p) {
            _correctedFaults +=
                static_cast<std::uint64_t>(_units[p].scrub());
        });
        _scrubSet.clearAll();
    }

    // Phase 0: latch every broadcast wire once. The ready set already
    // tracks which units assert their signal; the filter can only
    // take wires away, so visible = ready minus suppressed. All
    // observers' AND terms read the same latched wires.
    _visibleSet.assignFrom(_readySet);
    if (_filter != nullptr) {
        _readySet.forEach([&](std::size_t p) {
            if (_filter->suppress(static_cast<int>(p), now))
                _visibleSet.clear(p);
        });
    }

    if (_visibleSet.empty()) {
        // Dark wires: no group's AND can be true, so phase 1 latches
        // false everywhere and phase 2 reduces to cancelling any
        // in-flight delivery whose term glitched dark (fault paths).
        // This is the common case whenever every processor is off
        // computing between barrier episodes.
        if (!_pendingSet.empty()) {
            _pendingSet.forEach(
                [&](std::size_t p) { _deliverAt[p] = kNone; });
            _pendingSet.clearAll();
        }
        _completeSet.clearAll();
        _delivered.clear();
        return 0;
    }

    // Phase 1: latch which processors see a complete group, based on
    // this cycle's latched wires, and start the propagation clock for
    // groups that just completed. Only visible units can possibly be
    // complete; each candidate's member set is first checked a word
    // at a time against the visible wires, then per member for
    // matching tag and epoch. When a group completes, every member
    // with the identical member set shares the verdict (symmetric
    // groups complete in one scan instead of one scan per member).
    _completeSet.clearAll();
    _visibleSet.forEach([&](std::size_t p) {
        if (_completeSet.test(p))
            return;  // already latched via a symmetric member
        const BarrierUnit &u = _units[p];
        const BitVector &mask = u.mask();

        // Word-level subset test: every mask member's wire visible.
        for (std::size_t i = 0; i < mask.wordCount(); ++i) {
            if ((mask.word(i) & ~_visibleSet.word(i)) != 0)
                return;
        }

        // Per-member tag/epoch agreement.
        const std::uint32_t tag = u.tag();
        const std::uint32_t epoch = u.epoch();
        for (std::size_t i = 0; i < mask.wordCount(); ++i) {
            std::uint64_t w = mask.word(i);
            while (w != 0) {
                const auto q = i * 64 + static_cast<std::size_t>(
                                            std::countr_zero(w));
                w &= w - 1;
                const BarrierUnit &other = _units[q];
                if (other.tag() != tag || other.epoch() != epoch)
                    return;
            }
        }

        const std::uint64_t hash = cacheFor(static_cast<int>(p))
                                       .memberHash;
        const auto latch = [&](std::size_t m) {
            _completeSet.set(m);
            auto &at = _deliverAt[m];
            if (at == kNone) {
                at = now + cacheFor(static_cast<int>(m)).latency;
                _pendingSet.set(m);
            }
        };
        latch(p);
        mask.forEachSet([&](std::size_t q) {
            if (_completeSet.test(q))
                return;
            if (cacheFor(static_cast<int>(q)).memberHash != hash ||
                !sameMemberSet(static_cast<int>(p),
                               static_cast<int>(q)))
                return;
            latch(q);
        });
    });

    // Phase 2: deliver synchronization simultaneously once the
    // broadcast has propagated. An in-flight delivery whose AND has
    // gone false again (a suppressed pulse or recovery re-masking mid
    // propagation) is cancelled: the hardware AND is combinational,
    // so a glitched term restarts the propagation clock. Without
    // faults the AND is stable once true and this never fires. Only
    // units that are pending or freshly complete can change state.
    int delivered = 0;
    bool any_event = false;
    _delivered.clear();
    _phase2Set.assignUnion(_pendingSet, _completeSet);
    _phase2Set.forEach([&](std::size_t p) {
        auto &at = _deliverAt[p];
        if (!_completeSet.test(p)) {
            at = kNone;
            _pendingSet.clear(p);
            return;
        }
        if (at != kNone && now >= at) {
            _units[p].deliverSync();
            at = kNone;
            _pendingSet.clear(p);
            ++delivered;
            _delivered.push_back(static_cast<int>(p));
            any_event = true;
        }
    });
    if (any_event)
        ++_syncEvents;
    return delivered;
}

std::uint64_t
BarrierNetwork::nextDeliveryCycle() const
{
    std::uint64_t next = kNone;
    _pendingSet.forEach([&](std::size_t p) {
        next = std::min(next, _deliverAt[p]);
    });
    return next;
}

bool
BarrierNetwork::deliveryPendingFor(int p) const
{
    FB_ASSERT(p >= 0 && p < numProcessors(), "processor index " << p
                                                                << " bad");
    return _deliverAt[static_cast<std::size_t>(p)] != kNone;
}

std::uint64_t
BarrierNetwork::deliveryCycleFor(int p) const
{
    FB_ASSERT(p >= 0 && p < numProcessors(), "processor index " << p
                                                                << " bad");
    return _deliverAt[static_cast<std::size_t>(p)];
}

bool
BarrierNetwork::wouldDeadlock(const std::vector<bool> &halted,
                              std::uint64_t now) const
{
    // Deadlock: at least one processor is waiting (ready or stalled),
    // every non-halted processor is waiting, and no waiting group is
    // complete. Halted partners can never arrive, and mutual waits
    // with mismatched tags (Fig. 2) never resolve.
    //
    // Latch the visible wires once (the phase-0 latch of evaluate())
    // instead of re-deriving them per (waiter, member) pair: the old
    // O(n^2) member rescans made every watchdog-armed no-progress
    // check quadratic in the processor count.
    bool any_waiting = false;
    HiBitset visible(_readySet.size());
    visible.assignFrom(_readySet);
    if (_filter != nullptr) {
        _readySet.forEach([&](std::size_t p) {
            if (_filter->suppress(static_cast<int>(p), now))
                visible.clear(p);
        });
    }

    const int n = numProcessors();
    for (int p = 0; p < n; ++p) {
        const auto sp = static_cast<std::size_t>(p);
        if (halted[sp])
            continue;
        if (!_units[sp].readySignal())
            return false;  // someone can still make progress
        any_waiting = true;
        if (!visible.test(sp))
            continue;  // suppressed wire: this group cannot complete
        const BarrierUnit &u = _units[sp];
        const BitVector &mask = u.mask();
        bool complete = true;
        for (std::size_t i = 0; complete && i < mask.wordCount(); ++i) {
            if ((mask.word(i) & ~visible.word(i)) != 0) {
                complete = false;
                break;
            }
            std::uint64_t w = mask.word(i);
            while (w != 0) {
                const auto q = i * 64 + static_cast<std::size_t>(
                                            std::countr_zero(w));
                w &= w - 1;
                if (_units[q].tag() != u.tag() ||
                    _units[q].epoch() != u.epoch()) {
                    complete = false;
                    break;
                }
            }
        }
        if (complete)
            return false;  // sync will be delivered
    }
    return any_waiting;
}

DeadlockReport
BarrierNetwork::analyzeDeadlock(const std::vector<bool> &halted,
                                std::uint64_t now) const
{
    DeadlockReport report;
    if (!wouldDeadlock(halted, now))
        return report;

    // Genuinely wedged: build the per-processor diagnosis. This pass
    // is diagnostic-only (one call per failed run), so the member
    // walk below optimizes for completeness, not speed.
    for (int p = 0; p < numProcessors(); ++p) {
        const BarrierUnit &u = _units[static_cast<std::size_t>(p)];
        if (halted[static_cast<std::size_t>(p)])
            continue;

        DeadlockReport::Entry entry;
        entry.proc = p;
        entry.state = u.state();
        entry.tag = u.tag();
        entry.epoch = u.epoch();
        u.mask().forEachSet([&](std::size_t q) {
            const BarrierUnit &other = _units[q];
            if (!signalVisible(static_cast<int>(q), now) ||
                other.tag() != u.tag() || other.epoch() != u.epoch())
                entry.unsatisfied.push_back(static_cast<int>(q));
        });
        report.stuck.push_back(std::move(entry));
    }
    report.deadlocked = !report.stuck.empty();
    return report;
}

void
BarrierNetwork::encodeState(snapshot::Encoder &e) const
{
    e.u32(static_cast<std::uint32_t>(_units.size()));
    for (const BarrierUnit &u : _units)
        u.encodeState(e);
    e.u64Vec(_deliverAt);
    e.u64(_syncEvents);
    e.u64(_correctedFaults);
}

bool
BarrierNetwork::decodeState(snapshot::Decoder &d)
{
    const std::uint32_t count = d.u32();
    if (count != _units.size())
        return false;
    for (BarrierUnit &u : _units)
        if (!u.decodeState(d))
            return false;
    d.u64Vec(_deliverAt);
    _syncEvents = d.u64();
    _correctedFaults = d.u64();
    _delivered.clear();
    if (!d.ok() || _deliverAt.size() != _units.size())
        return false;
    rebuildSets();
    return true;
}

} // namespace fb::barrier
