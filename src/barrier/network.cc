#include "barrier/network.hh"

#include <algorithm>
#include <limits>
#include <sstream>

#include "support/logging.hh"

namespace fb::barrier
{

std::string
DeadlockReport::toString() const
{
    if (!deadlocked)
        return {};
    std::ostringstream oss;
    oss << "barrier deadlock: " << stuck.size()
        << " processor(s) stuck\n";
    for (const Entry &e : stuck) {
        oss << "  cpu" << e.proc << ": state="
            << barrierStateName(e.state) << " tag=" << e.tag
            << " epoch=" << e.epoch << " waiting-on={";
        for (std::size_t i = 0; i < e.unsatisfied.size(); ++i) {
            if (i)
                oss << ",";
            oss << "cpu" << e.unsatisfied[i];
        }
        oss << "}\n";
    }
    return oss.str();
}

BarrierNetwork::BarrierNetwork(int num_processors,
                               std::uint32_t sync_latency)
    : _syncLatency(sync_latency),
      _deliverAt(static_cast<std::size_t>(num_processors),
                 std::numeric_limits<std::uint64_t>::max()),
      _complete(static_cast<std::size_t>(num_processors)),
      _wireVisible(static_cast<std::size_t>(num_processors)),
      _wireTag(static_cast<std::size_t>(num_processors)),
      _wireEpoch(static_cast<std::size_t>(num_processors))
{
    FB_ASSERT(num_processors > 0, "need at least one processor");
    _delivered.reserve(static_cast<std::size_t>(num_processors));
    _units.reserve(static_cast<std::size_t>(num_processors));
    for (int p = 0; p < num_processors; ++p)
        _units.emplace_back(num_processors, p);
}

void
BarrierNetwork::reset(std::uint32_t sync_latency)
{
    _syncLatency = sync_latency;
    for (BarrierUnit &u : _units)
        u.reset();
    std::fill(_deliverAt.begin(), _deliverAt.end(),
              std::numeric_limits<std::uint64_t>::max());
    std::fill(_complete.begin(), _complete.end(), false);
    _delivered.clear();
    _syncEvents = 0;
    _correctedFaults = 0;
    _filter = nullptr;
}

BarrierUnit &
BarrierNetwork::unit(int p)
{
    FB_ASSERT(p >= 0 && p < numProcessors(), "processor index " << p
                                                                << " bad");
    return _units[static_cast<std::size_t>(p)];
}

const BarrierUnit &
BarrierNetwork::unit(int p) const
{
    FB_ASSERT(p >= 0 && p < numProcessors(), "processor index " << p
                                                                << " bad");
    return _units[static_cast<std::size_t>(p)];
}

bool
BarrierNetwork::signalVisible(int p, std::uint64_t now) const
{
    const BarrierUnit &u = _units[static_cast<std::size_t>(p)];
    if (!u.readySignal())
        return false;
    return _filter == nullptr || !_filter->suppress(p, now);
}

bool
BarrierNetwork::groupComplete(int p, std::uint64_t now) const
{
    const BarrierUnit &u = _units[static_cast<std::size_t>(p)];
    // A suppressed pulse vanishes from the wire itself, so the owner's
    // own AND input goes dark too — every observer sees the same
    // signal and the group stays un-synchronized as a whole.
    if (!signalVisible(p, now))
        return false;
    for (int q = 0; q < numProcessors(); ++q) {
        if (!u.mask().test(static_cast<std::size_t>(q)))
            continue;
        const BarrierUnit &other = _units[static_cast<std::size_t>(q)];
        if (!signalVisible(q, now) || other.tag() != u.tag() ||
            other.epoch() != u.epoch())
            return false;
    }
    return true;
}

int
BarrierNetwork::evaluate(std::uint64_t now)
{
    constexpr std::uint64_t none =
        std::numeric_limits<std::uint64_t>::max();

    // ECC scrub: restore any tag/mask register a fault corrupted
    // since the last evaluation. In the fault-free case every unit's
    // dirty flag is clear and this is a single-branch no-op per unit.
    for (auto &u : _units)
        _correctedFaults += static_cast<std::uint64_t>(u.scrub());

    // Phase 0: latch every broadcast wire once. All observers' AND
    // terms read the same signal, tag and epoch lines, so sampling
    // them per processor (instead of per observer-member pair inside
    // groupComplete) evaluates the identical combinational function.
    const int n = numProcessors();
    bool any_visible = false;
    for (int p = 0; p < n; ++p) {
        const auto sp = static_cast<std::size_t>(p);
        const BarrierUnit &u = _units[sp];
        const bool vis = u.readySignal() &&
                         (_filter == nullptr || !_filter->suppress(p, now));
        _wireVisible[sp] = vis ? 1 : 0;
        any_visible = any_visible || vis;
        _wireTag[sp] = u.tag();
        _wireEpoch[sp] = u.epoch();
    }

    if (!any_visible) {
        // Dark wires: no group's AND can be true, so phase 1 latches
        // false everywhere and phase 2 reduces to cancelling any
        // in-flight delivery whose term glitched dark (fault paths).
        // This is the common case whenever every processor is off
        // computing between barrier episodes.
        std::fill(_complete.begin(), _complete.end(), false);
        std::fill(_deliverAt.begin(), _deliverAt.end(), none);
        _delivered.clear();
        return 0;
    }

    // Phase 1: latch which processors see a complete group, based on
    // this cycle's latched wires, and start the propagation clock for
    // groups that just completed. (_complete is a member so the
    // per-cycle evaluation allocates nothing.)
    for (int p = 0; p < n; ++p) {
        const auto sp = static_cast<std::size_t>(p);
        bool complete = _wireVisible[sp] != 0;
        if (complete) {
            const BitVector &mask = _units[sp].mask();
            const std::uint32_t tag = _wireTag[sp];
            const std::uint32_t epoch = _wireEpoch[sp];
            for (int q = 0; q < n; ++q) {
                const auto sq = static_cast<std::size_t>(q);
                if (!mask.test(sq))
                    continue;
                if (_wireVisible[sq] == 0 || _wireTag[sq] != tag ||
                    _wireEpoch[sq] != epoch) {
                    complete = false;
                    break;
                }
            }
        }
        _complete[sp] = complete;
        auto &at = _deliverAt[sp];
        if (complete && at == none)
            at = now + _syncLatency;
    }

    // Phase 2: deliver synchronization simultaneously once the
    // broadcast has propagated. An in-flight delivery whose AND has
    // gone false again (a suppressed pulse or recovery re-masking mid
    // propagation) is cancelled: the hardware AND is combinational,
    // so a glitched term restarts the propagation clock. Without
    // faults the AND is stable once true and this never fires.
    int delivered = 0;
    bool any_event = false;
    _delivered.clear();
    for (int p = 0; p < numProcessors(); ++p) {
        auto &at = _deliverAt[static_cast<std::size_t>(p)];
        if (!_complete[static_cast<std::size_t>(p)]) {
            at = none;
            continue;
        }
        if (at != none && now >= at) {
            _units[static_cast<std::size_t>(p)].deliverSync();
            at = none;
            ++delivered;
            _delivered.push_back(p);
            any_event = true;
        }
    }
    if (any_event)
        ++_syncEvents;
    return delivered;
}

std::uint64_t
BarrierNetwork::nextDeliveryCycle() const
{
    std::uint64_t next = std::numeric_limits<std::uint64_t>::max();
    for (auto at : _deliverAt)
        next = std::min(next, at);
    return next;
}

bool
BarrierNetwork::deliveryPending() const
{
    for (auto at : _deliverAt) {
        if (at != std::numeric_limits<std::uint64_t>::max())
            return true;
    }
    return false;
}

bool
BarrierNetwork::deliveryPendingFor(int p) const
{
    FB_ASSERT(p >= 0 && p < numProcessors(), "processor index " << p
                                                                << " bad");
    return _deliverAt[static_cast<std::size_t>(p)] !=
           std::numeric_limits<std::uint64_t>::max();
}

bool
BarrierNetwork::wouldDeadlock(const std::vector<bool> &halted,
                              std::uint64_t now) const
{
    return analyzeDeadlock(halted, now).deadlocked;
}

DeadlockReport
BarrierNetwork::analyzeDeadlock(const std::vector<bool> &halted,
                                std::uint64_t now) const
{
    // Deadlock: at least one processor is waiting (ready or stalled),
    // every non-halted processor is waiting, and no waiting group is
    // complete. Halted partners can never arrive, and mutual waits
    // with mismatched tags (Fig. 2) never resolve.
    DeadlockReport report;
    for (int p = 0; p < numProcessors(); ++p) {
        const BarrierUnit &u = _units[static_cast<std::size_t>(p)];
        if (halted[static_cast<std::size_t>(p)])
            continue;
        if (!u.readySignal())
            return {};  // someone can still make progress
        if (groupComplete(p, now))
            return {};  // sync will be delivered

        DeadlockReport::Entry entry;
        entry.proc = p;
        entry.state = u.state();
        entry.tag = u.tag();
        entry.epoch = u.epoch();
        for (int q = 0; q < numProcessors(); ++q) {
            if (!u.mask().test(static_cast<std::size_t>(q)))
                continue;
            const BarrierUnit &other =
                _units[static_cast<std::size_t>(q)];
            if (!signalVisible(q, now) || other.tag() != u.tag() ||
                other.epoch() != u.epoch())
                entry.unsatisfied.push_back(q);
        }
        report.stuck.push_back(std::move(entry));
    }
    report.deadlocked = !report.stuck.empty();
    return report;
}

void
BarrierNetwork::encodeState(snapshot::Encoder &e) const
{
    e.u32(static_cast<std::uint32_t>(_units.size()));
    for (const BarrierUnit &u : _units)
        u.encodeState(e);
    e.u64Vec(_deliverAt);
    e.u64(_syncEvents);
    e.u64(_correctedFaults);
}

bool
BarrierNetwork::decodeState(snapshot::Decoder &d)
{
    const std::uint32_t count = d.u32();
    if (count != _units.size())
        return false;
    for (BarrierUnit &u : _units)
        if (!u.decodeState(d))
            return false;
    d.u64Vec(_deliverAt);
    _syncEvents = d.u64();
    _correctedFaults = d.u64();
    _delivered.clear();
    return d.ok() && _deliverAt.size() == _units.size();
}

} // namespace fb::barrier
