/**
 * @file
 * The four states of the per-processor fuzzy-barrier state machine.
 *
 * Paper section 6: "A processor's state machine can be in one of the
 * following states: (i) the processor is executing instructions from a
 * non-barrier region; (ii) the processor is in the barrier region and
 * has not synchronized; (iii) the processor is in the barrier region
 * and has synchronized; and (iv) synchronization has not taken place
 * and the processor is stalled as it has completed the execution of
 * instructions from the barrier region."
 */

#ifndef FB_BARRIER_STATE_HH
#define FB_BARRIER_STATE_HH

namespace fb::barrier
{

/** State of one processor's barrier hardware. */
enum class BarrierState
{
    NonBarrier,  ///< (i) executing non-barrier instructions
    Ready,       ///< (ii) in barrier region, not yet synchronized
    Synced,      ///< (iii) in barrier region, synchronized
    Stalled,     ///< (iv) region exhausted, waiting for synchronization
};

/** Readable name for a state. */
inline const char *
barrierStateName(BarrierState s)
{
    switch (s) {
      case BarrierState::NonBarrier: return "NonBarrier";
      case BarrierState::Ready: return "Ready";
      case BarrierState::Synced: return "Synced";
      case BarrierState::Stalled: return "Stalled";
    }
    return "?";
}

} // namespace fb::barrier

#endif // FB_BARRIER_STATE_HH
