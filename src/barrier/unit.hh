/**
 * @file
 * Per-processor fuzzy-barrier hardware: state machine plus the
 * internal register holding the current tag and participation mask.
 */

#ifndef FB_BARRIER_UNIT_HH
#define FB_BARRIER_UNIT_HH

#include <cstdint>

#include "barrier/state.hh"
#include "snapshot/codec.hh"
#include "support/bitvector.hh"
#include "support/stats.hh"

namespace fb::barrier
{

/**
 * Observer for the unit events the network tracks sparsely: ready
 * signal edges (maintaining the ready set that replaces the per-cycle
 * all-units scan) and register corruption (maintaining the scrub
 * set). The network installs itself; the indirection only exists
 * because unit.hh cannot depend on network.hh.
 */
class UnitEventListener
{
  public:
    virtual ~UnitEventListener() = default;

    /** Processor @p self's broadcast ready signal changed edges. */
    virtual void readySignalChanged(int self, bool ready) = 0;

    /** Processor @p self's tag/mask register was corrupted. */
    virtual void unitDirtied(int self) = 0;
};

/**
 * The barrier hardware replicated in each processor (paper section 6).
 *
 * The unit is driven by two parties: the processor core, which reports
 * region entry/exit events derived from the instruction stream, and
 * the BarrierNetwork, which evaluates the broadcast AND once per cycle
 * and delivers synchronization. "No explicit reset is required as the
 * state machine returns to the start state when a processor is ready
 * to synchronize again."
 */
class BarrierUnit
{
  public:
    /**
     * @param num_processors total processors in the system (mask width)
     * @param self this processor's index
     */
    BarrierUnit(int num_processors, int self);

    /** This processor's index. */
    int self() const { return _self; }

    /** Current FSM state. */
    BarrierState state() const { return _state; }

    /**
     * Set the barrier tag. Tag 0 means "not participating in barrier
     * synchronization"; with an m-bit tag the system supports 2^m - 1
     * logical barriers.
     */
    void setTag(std::uint32_t tag) { _tag = _shadowTag = tag; }

    /** Current tag. */
    std::uint32_t tag() const { return _tag; }

    /**
     * Synchronization epoch. All units start at epoch 0; the recovery
     * protocol bumps every *surviving* unit after fencing a dead
     * participant, so the dead unit's latched ready-pulse (stale
     * epoch) can never again satisfy a survivor's AND, and the
     * survivors' pulses can never complete the dead unit's group.
     */
    std::uint32_t epoch() const { return _epoch; }

    /** Advance to the next synchronization epoch (recovery). */
    void bumpEpoch() { ++_epoch; }

    /** True if this unit takes part in barrier synchronization. */
    bool participating() const { return _tag != 0; }

    /** Set the participation mask from a bit-per-processor word. */
    void setMask(std::uint64_t bits);

    /** Set every mask bit (except self) — the all-processors group.
     * Unlike the word form this scales past 64 processors. */
    void setMaskAll();

    /** Set one mask bit. */
    void setMaskBit(int processor, bool value = true);

    /** The participation mask (bit q = synchronize with processor q). */
    const BitVector &mask() const { return _mask; }

    /**
     * Monotonic counter bumped on every mask mutation (architectural
     * writes, corruption, scrub restores, reset, decode). The network
     * keys its per-unit derived caches — topology span, delivery
     * latency, member-set hash — on it.
     */
    std::uint64_t maskVersion() const { return _maskVersion; }

    /** Install (or clear) the network's event listener. */
    void setListener(UnitEventListener *listener)
    {
        _listener = listener;
    }

    /**
     * The core is ready to synchronize: it has exited the non-barrier
     * region preceding a barrier region. Legal from NonBarrier (new
     * episode). A non-participating unit stays in NonBarrier.
     */
    void arrive();

    /**
     * True if the core may execute a non-barrier instruction after a
     * region, i.e. synchronization has occurred (or the unit is not
     * participating / was never armed).
     */
    bool mayCross() const;

    /**
     * The core executed the first non-barrier instruction after the
     * region. Legal only when mayCross(); returns the FSM to
     * NonBarrier.
     */
    void cross();

    /**
     * The core wants to leave the region but synchronization has not
     * occurred; records the stall state.
     */
    void noteStalled();

    /** Asserted readiness signal broadcast to the other processors. */
    bool readySignal() const
    {
        return _state == BarrierState::Ready ||
               _state == BarrierState::Stalled;
    }

    /** Called by the network when the group AND is satisfied. */
    void deliverSync();

    /** Number of completed barrier episodes. */
    std::uint64_t episodes() const { return _episodes; }

    /** Number of episodes in which this processor had to stall. */
    std::uint64_t stalledEpisodes() const { return _stalledEpisodes; }

    /** Total cycles spent in the Stalled state. */
    std::uint64_t stallCycles() const { return _stallCycles; }

    /** Account one cycle spent stalled (called by the core). */
    void tickStalled() { ++_stallCycles; }

    /**
     * Account @p cycles consecutive stalled cycles at once — the
     * fast-forward core's bulk equivalent of tickStalled().
     */
    void tickStalledFor(std::uint64_t cycles) { _stallCycles += cycles; }

    /**
     * Fault injection: flip one bit of the live tag register. The
     * shadow copy is untouched, so the next scrub() restores the tag
     * and reports the correction (modelling an ECC-protected
     * register file).
     */
    void corruptTagBit(int bit);

    /** Fault injection: flip one bit of the live mask register. */
    void corruptMaskBit(int processor);

    /**
     * Compare live tag/mask against their shadow copies and restore
     * any divergence.
     *
     * @return number of corrupted registers corrected (0, 1 or 2)
     */
    int scrub();

    /**
     * Return every architected and statistics register to its
     * construction-time value (machine reuse). The processor count
     * and self index are structural and stay fixed.
     */
    void reset();

    /** Serialize the full unit state for checkpointing. */
    void encodeState(snapshot::Encoder &e) const;

    /** Restore state captured with encodeState(). */
    bool decodeState(snapshot::Decoder &d);

  private:
    /** Report a ready-signal edge to the listener (if any). */
    void notifyReady(bool ready)
    {
        if (_listener != nullptr)
            _listener->readySignalChanged(_self, ready);
    }

    int _numProcessors;
    int _self;
    UnitEventListener *_listener = nullptr;
    std::uint64_t _maskVersion = 0;
    BarrierState _state = BarrierState::NonBarrier;
    std::uint32_t _tag = 0;
    std::uint32_t _epoch = 0;
    BitVector _mask;

    // ECC shadow copies of the architected tag/mask registers. The
    // software interface (setTag/setMask/setMaskBit) writes both; a
    // fault injector corrupts only the live copy, and scrub()
    // restores it. _dirty short-circuits the common no-fault case.
    std::uint32_t _shadowTag = 0;
    BitVector _shadowMask;
    bool _dirty = false;

    std::uint64_t _episodes = 0;
    std::uint64_t _stalledEpisodes = 0;
    std::uint64_t _stallCycles = 0;
    bool _stalledThisEpisode = false;
};

} // namespace fb::barrier

#endif // FB_BARRIER_UNIT_HH
