#include "sim/cache.hh"

#include "support/logging.hh"

namespace fb::sim
{

DataCache::DataCache(const CacheConfig &config)
    : _config(config), _valid(config.numLines, false),
      _tags(config.numLines, 0)
{
    FB_ASSERT(config.numLines > 0, "cache needs at least one line");
    FB_ASSERT(config.lineWords > 0, "cache line needs at least one word");
}

CacheAccessResult
DataCache::access(std::size_t addr)
{
    if (!_config.enabled)
        return {false, _config.missPenalty};

    std::size_t line = lineOf(addr);
    std::size_t tag = tagOf(addr);
    if (_valid[line] && _tags[line] == tag) {
        ++_hits;
        return {true, 1};
    }
    ++_misses;
    _valid[line] = true;
    _tags[line] = tag;
    markLine(line);
    return {false, _config.missPenalty};
}

void
DataCache::invalidate(std::size_t addr)
{
    if (!_config.enabled)
        return;
    std::size_t line = lineOf(addr);
    if (_valid[line] && _tags[line] == tagOf(addr)) {
        _valid[line] = false;
        markLine(line);
    }
}

void
DataCache::flush()
{
    for (std::size_t i = 0; i < _valid.size(); ++i) {
        if (_valid[i]) {
            _valid[i] = false;
            markLine(i);
        }
    }
}

} // namespace fb::sim
