/**
 * @file
 * Configuration for the simulated multiprocessor.
 */

#ifndef FB_SIM_CONFIG_HH
#define FB_SIM_CONFIG_HH

#include <cstddef>
#include <cstdint>

#include "barrier/topology.hh"
#include "fault/plan.hh"
#include "fault/watchdog.hh"
#include "sim/bus.hh"

namespace fb::sim
{

/**
 * What happens when a processor exhausts its barrier region before
 * synchronization has occurred.
 */
enum class StallKind
{
    /**
     * The proposed hardware mechanism: the processor simply idles;
     * each stalled cycle costs exactly one cycle.
     */
    Hardware,

    /**
     * The Encore-style software implementation (paper section 8): a
     * stalled task suffers a context save, and after synchronization a
     * context restore, before it can continue. "The cost of barrier
     * synchronization is mainly due to context saves and restores for
     * the tasks that must be stalled."
     */
    Software,
};

/** Stall cost model. */
struct StallModel
{
    StallKind kind = StallKind::Hardware;
    /** Cycles to save a stalled task's context (Software only). */
    std::uint32_t saveCycles = 0;
    /** Cycles to restore the task after synchronization (Software). */
    std::uint32_t restoreCycles = 0;

    /** The free hardware stall. */
    static StallModel hardware() { return {}; }

    /** Software stall with symmetric save/restore cost. */
    static StallModel
    software(std::uint32_t save, std::uint32_t restore)
    {
        return {StallKind::Software, save, restore};
    }
};

/** Per-processor data cache parameters. */
struct CacheConfig
{
    bool enabled = true;
    /** Number of direct-mapped lines. */
    std::size_t numLines = 256;
    /** Words per line. */
    std::size_t lineWords = 4;
    /** Cycles added by a miss (before bus queueing). */
    std::uint32_t missPenalty = 20;
};

/** Whole-machine parameters. */
struct MachineConfig
{
    int numProcessors = 4;

    /**
     * Issue width: the maximum number of consecutive, mutually
     * independent instructions issued per cycle (section 9: the
     * prototype "will be used for executing code in VLIW mode").
     * Width 1 is the scalar machine. Later slots accept only
     * single-issue-safe operations (ALU; a branch may close the
     * bundle); memory, linkage, and barrier-control operations issue
     * alone, and a bundle never spans a region boundary.
     */
    int issueWidth = 1;

    /**
     * In-order pipeline depth. 1 models the non-pipelined machine
     * where "a processor enters a region at the same time it exits
     * the preceding region". Depths > 1 delay the readiness signal
     * until the last non-barrier instruction drains from the pipe
     * (paper section 2/6 distinction between entering the barrier
     * region and exiting the non-barrier region).
     */
    int pipelineDepth = 1;

    /** Shared memory size in 64-bit words. */
    std::size_t memWords = 1u << 20;

    CacheConfig cache;

    /** Bus service time per cache miss (contention source). */
    std::uint32_t busServiceCycles = 4;

    /** Interconnect contention model (shared bus vs banked). */
    BusKind busKind = BusKind::Shared;

    /**
     * Propagation delay of the barrier broadcast network in cycles:
     * synchronization is observed this many cycles after the last
     * participant becomes ready. Models the growing interconnect of
     * larger machines (section 6's extensibility caveat).
     */
    std::uint32_t syncLatency = 0;

    /**
     * Shape of the barrier broadcast wires (section 6's extensibility
     * caveat, made concrete): a flat network pays @ref syncLatency
     * alone; tree:A and cluster:S shapes add 2 * span * level_latency
     * cycles for the subtree a group spans. This changes *reported*
     * latencies (never episode ordering or register results — the
     * simultaneous-delivery guarantee is topology-independent), so it
     * participates in the config fingerprint.
     */
    barrier::Topology topology;

    StallModel stall;

    /**
     * Mean of random per-instruction execution jitter in cycles
     * (models TLB misses, DRAM refresh, and other drift sources the
     * paper cites). 0 disables jitter.
     */
    double jitterMean = 0.0;

    /** Seed for all stochastic behaviour. */
    std::uint64_t seed = 1;

    /**
     * Timer interrupt period in cycles (0 disables interrupts). When
     * an interrupt fires, the processor saves its PC and vectors to
     * @ref isrEntry; the service routine runs outside the barrier
     * region structure (no arrivals, no crossing checks) and returns
     * with IRET. Interrupts are also delivered while a processor is
     * stalled at a barrier — the stalled processor does useful
     * interrupt work while it waits (section 9 future work).
     */
    std::uint64_t interruptPeriod = 0;

    /** Instruction index of the interrupt service routine. */
    std::int64_t isrEntry = -1;

    /** Abort the run after this many cycles (runaway guard). */
    std::uint64_t maxCycles = 200'000'000;

    /** Record sync events for the safety oracle. */
    bool recordSyncEvents = true;

    /**
     * Cap on the retained sync-record trail (0 = unbounded). A very
     * long run with recordSyncEvents on grows the record vector — and
     * with it every checkpoint's core section — without bound; with a
     * window only the newest this-many completed records survive,
     * rotating the rest out (RunResult::syncRecordsDropped counts
     * them). Records still open, or already pinned by the current
     * delta-checkpoint epoch, are never rotated out, so delta patching
     * stays exact. Unlike the operational knobs below this changes
     * what the run reports, so it participates in the config
     * fingerprint.
     */
    std::size_t syncRecordWindow = 0;

    /**
     * Fault schedule to inject (not owned; nullptr or an empty plan
     * disables injection entirely — the machine then builds no
     * injector and the run loop is byte-identical to the pre-fault
     * simulator).
     */
    const fault::FaultPlan *faultPlan = nullptr;

    /**
     * Barrier watchdog configuration. Disabled by default; enable it
     * to detect dead participants and trigger the epoch/mask-shrink
     * recovery protocol.
     */
    fault::WatchdogConfig watchdog;

    /** Record per-cycle barrier states for the timeline renderer
     * (costs memory proportional to cycles x processors). */
    bool traceBarrierStates = false;

    /**
     * Event-driven fast-forward: when no processor can make progress
     * at the current cycle, jump time directly to the next event
     * (execute completion, barrier delivery, interrupt, fault action,
     * watchdog deadline) and bulk-account the skipped wait cycles.
     * All RunResult counters stay bit-identical to the per-cycle
     * loop; the differential verifier cross-checks the two modes.
     * Forced off when traceBarrierStates needs per-cycle records.
     */
    bool fastForward = true;

    /**
     * Take a state snapshot every this many cycles (0 disables
     * checkpointing). The snapshot is handed to the sink installed
     * with Machine::setCheckpointSink(). A non-zero period also clamps
     * fast-forward skips to checkpoint boundaries so the clock lands
     * exactly on every multiple — by the advanceWait() invariant this
     * never changes results, and it is excluded from the config
     * fingerprint for the same reason.
     */
    std::uint64_t checkpointEveryCycles = 0;

    /**
     * With a staged checkpoint sink installed, every Nth capture is a
     * full snapshot that re-bases the delta chain; the captures in
     * between are dirty-page deltas against their predecessor. 1
     * disables deltas entirely (every capture full). Like
     * checkpointEveryCycles this is an operational knob — it changes
     * what is persisted, never what is computed — and is excluded
     * from the config fingerprint.
     */
    std::uint32_t checkpointRebaseEvery = 8;

    /**
     * Host-thread shards for exec::ShardedMachine (section 17). The
     * processors are partitioned into this many contiguous shards,
     * each advanced by one host thread through provably
     * processor-private cycles; every globally visible action still
     * executes on the coordinating thread in (cycle, proc-id) order,
     * so results are byte-identical at any shard count. sim::Machine
     * itself never spawns threads: run() ignores these fields unless
     * a window driver is installed, and both are excluded from the
     * config fingerprint and the pool's structural key — like
     * checkpointEveryCycles, they change only how the clock advances,
     * never what it computes.
     */
    int shardCount = 1;

    /**
     * Maximum cycles a shard may run ahead of the global clock
     * between rendezvous (the fuzzy-barrier skew bound, quantum-style
     * like Sniper's barrier-synchronized cores). 0 disables sharding
     * entirely — the sequential core is unchanged.
     */
    std::uint64_t shardQuantum = 0;

    /**
     * Pre-decoded threaded-code execution backend: decode each loaded
     * program once into a flat DecodedProgram and run straight-line,
     * non-barrier, non-observable stretches through a computed-goto
     * dispatch loop that macro-steps whole windows per call (the
     * busy-stretch dual of fastForward's idle skip; requires
     * fastForward in the sequential core, where the macro-step path
     * reuses the shard-window machinery with a fixed quantum). Every
     * counter, register, PRNG draw, trace record and snapshot byte
     * stays bit-identical to the per-cycle loop — the equivalence
     * corpus pins this — so the flag is excluded from the config
     * fingerprint and the pool's structural key, like the other
     * how-not-what knobs above.
     */
    bool predecode = true;

    /**
     * Allow the windowed dispatcher to execute *loads* on a shard's
     * private fast path when the load provably cannot observe another
     * processor's store inside the window (own-cache hit below the
     * cross-processor write horizon). Pure optimization: values,
     * counters and snapshot bytes are bit-identical either way — the
     * equivalence corpus pins this — so like predecode it is excluded
     * from the config fingerprint.
     */
    bool privateReads = true;
};

} // namespace fb::sim

#endif // FB_SIM_CONFIG_HH
