/**
 * @file
 * Per-processor direct-mapped data cache model.
 *
 * Cache misses are the paper's canonical source of execution drift:
 * "Due to a cache miss, a processor may fall behind in execution even
 * if all processors are executing identical instructions" (section 1).
 * The model only computes timing (hit or miss latency); data always
 * comes from the shared memory, so coherence is trivially maintained
 * by invalidating on remote writes.
 */

#ifndef FB_SIM_CACHE_HH
#define FB_SIM_CACHE_HH

#include <cstdint>
#include <vector>

#include "sim/config.hh"

namespace fb::sim
{

/** Result of a cache access: cycles the access takes. */
struct CacheAccessResult
{
    bool hit;
    std::uint32_t cycles;  ///< 1 on hit, missPenalty (+bus) on miss
};

/**
 * Direct-mapped write-through cache (timing only).
 */
class DataCache
{
  public:
    explicit DataCache(const CacheConfig &config);

    /**
     * Access word @p addr. Returns hit/miss and the base latency
     * (bus queueing is added by the caller). Stores allocate like
     * loads (write-through, write-allocate).
     */
    CacheAccessResult access(std::size_t addr);

    /** Invalidate the line containing @p addr (remote write). */
    void invalidate(std::size_t addr);

    /** Drop every line. */
    void flush();

    /** Hits so far. */
    std::uint64_t hits() const { return _hits; }

    /** Misses so far. */
    std::uint64_t misses() const { return _misses; }

  private:
    std::size_t lineOf(std::size_t addr) const
    {
        return (addr / _config.lineWords) % _config.numLines;
    }

    std::size_t tagOf(std::size_t addr) const
    {
        return addr / _config.lineWords / _config.numLines;
    }

    CacheConfig _config;
    std::vector<bool> _valid;
    std::vector<std::size_t> _tags;
    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;
};

} // namespace fb::sim

#endif // FB_SIM_CACHE_HH
