/**
 * @file
 * Per-processor direct-mapped data cache model.
 *
 * Cache misses are the paper's canonical source of execution drift:
 * "Due to a cache miss, a processor may fall behind in execution even
 * if all processors are executing identical instructions" (section 1).
 * The model only computes timing (hit or miss latency); data always
 * comes from the shared memory, so coherence is trivially maintained
 * by invalidating on remote writes.
 */

#ifndef FB_SIM_CACHE_HH
#define FB_SIM_CACHE_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/config.hh"
#include "snapshot/codec.hh"

namespace fb::sim
{

/** Result of a cache access: cycles the access takes. */
struct CacheAccessResult
{
    bool hit;
    std::uint32_t cycles;  ///< 1 on hit, missPenalty (+bus) on miss
};

/**
 * Direct-mapped write-through cache (timing only).
 */
class DataCache
{
  public:
    explicit DataCache(const CacheConfig &config);

    /**
     * Access word @p addr. Returns hit/miss and the base latency
     * (bus queueing is added by the caller). Stores allocate like
     * loads (write-through, write-allocate).
     */
    CacheAccessResult access(std::size_t addr);

    /**
     * True if an access to @p addr would hit, without touching the
     * hit/miss counters or allocating (access() write-allocates, so it
     * cannot serve as a probe). The windowed dispatcher's private-read
     * predicate uses this: a hit means the word's line is already
     * resident — and this processor's sharer bit already set — so the
     * load is timing- and coherence-inert.
     */
    bool wouldHit(std::size_t addr) const
    {
        if (!_config.enabled)
            return false;
        const std::size_t line = lineOf(addr);
        return _valid[line] && _tags[line] == tagOf(addr);
    }

    /** Invalidate the line containing @p addr (remote write). */
    void invalidate(std::size_t addr);

    /** Drop every line. */
    void flush();

    /**
     * Reinitialize to a cold cache under @p config — equivalent to
     * constructing DataCache(config), reusing the line arrays. Tags
     * are zeroed too (not just invalidated) so a reused cache's
     * encoded snapshot is byte-identical to a fresh one's.
     */
    void
    reset(const CacheConfig &config)
    {
        _config = config;
        _valid.assign(config.numLines, false);
        _tags.assign(config.numLines, 0);
        _hits = 0;
        _misses = 0;
        endDeltaEpoch();
    }

    /** Hits so far. */
    std::uint64_t hits() const { return _hits; }

    /** Misses so far. */
    std::uint64_t misses() const { return _misses; }

    /** Serialize valid bits, tags and hit/miss counters. */
    void encodeState(snapshot::Encoder &e) const
    {
        e.boolVec(_valid);
        e.u64(_tags.size());
        for (std::size_t t : _tags)
            e.u64(t);
        e.u64(_hits);
        e.u64(_misses);
    }

    /** Restore state captured with encodeState(). */
    bool decodeState(snapshot::Decoder &d)
    {
        const std::size_t lines = _tags.size();
        d.boolVec(_valid);
        const std::uint64_t n = d.u64();
        if (!d.ok() || n != lines || _valid.size() != lines)
            return false;
        for (std::size_t i = 0; i < lines; ++i)
            _tags[i] = static_cast<std::size_t>(d.u64());
        _hits = d.u64();
        _misses = d.u64();
        return d.ok();
    }

    /** Begin (or roll over) a delta epoch (see SharedMemory). */
    void beginDeltaEpoch()
    {
        for (std::uint32_t line : _epochLines)
            _epochDirty[line] = false;
        _epochLines.clear();
        _epochDirty.resize(_valid.size(), false);
        _epochTracking = true;
    }

    /** Stop epoch tracking entirely. */
    void endDeltaEpoch()
    {
        for (std::uint32_t line : _epochLines)
            _epochDirty[line] = false;
        _epochLines.clear();
        _epochTracking = false;
    }

    /** Serialize only lines changed since beginDeltaEpoch() plus the
     *  (absolute) hit/miss counters. */
    void encodeDeltaState(snapshot::Encoder &e) const
    {
        std::vector<std::uint32_t> lines(_epochLines);
        std::sort(lines.begin(), lines.end());
        e.u64(lines.size());
        for (std::uint32_t line : lines) {
            e.u32(line);
            e.u8(_valid[line] ? 1 : 0);
            e.u64(_tags[line]);
        }
        e.u64(_hits);
        e.u64(_misses);
    }

    /** Apply a delta captured with encodeDeltaState(). */
    bool decodeDeltaState(snapshot::Decoder &d)
    {
        const std::uint64_t n = d.u64();
        for (std::uint64_t k = 0; k < n; ++k) {
            const std::uint32_t line = d.u32();
            const std::uint8_t valid = d.u8();
            const std::uint64_t tag = d.u64();
            if (!d.ok() || line >= _valid.size())
                return false;
            _valid[line] = valid != 0;
            _tags[line] = static_cast<std::size_t>(tag);
        }
        _hits = d.u64();
        _misses = d.u64();
        return d.ok();
    }

  private:
    void markLine(std::size_t line)
    {
        if (_epochTracking && !_epochDirty[line]) {
            _epochDirty[line] = true;
            _epochLines.push_back(static_cast<std::uint32_t>(line));
        }
    }

    std::size_t lineOf(std::size_t addr) const
    {
        return (addr / _config.lineWords) % _config.numLines;
    }

    std::size_t tagOf(std::size_t addr) const
    {
        return addr / _config.lineWords / _config.numLines;
    }

    CacheConfig _config;
    std::vector<bool> _valid;
    std::vector<std::size_t> _tags;
    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;

    // Delta-epoch bookkeeping (not serialized): lines whose valid bit
    // or tag changed since the last checkpoint capture.
    bool _epochTracking = false;
    std::vector<bool> _epochDirty;
    std::vector<std::uint32_t> _epochLines;
};

} // namespace fb::sim

#endif // FB_SIM_CACHE_HH
