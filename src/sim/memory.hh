/**
 * @file
 * Flat shared word-addressed memory with hot-spot accounting.
 */

#ifndef FB_SIM_MEMORY_HH
#define FB_SIM_MEMORY_HH

#include <cstdint>
#include <vector>

#include "snapshot/codec.hh"

namespace fb::sim
{

/**
 * The shared memory of the simulated multiprocessor.
 *
 * Addresses are word indices (one word = one int64). Access counts
 * per word are kept so experiment E8 can report hot-spot traffic: a
 * software barrier hammers a single flag word, while the hardware
 * fuzzy barrier performs no shared accesses at all.
 *
 * Both the counts and the dirty-word bookkeeping are paged: counts
 * live in lazily-allocated page-sized slabs indexed by a flat
 * page->slot table, and every page touched (stats) or written
 * (contents) since the last reset is remembered in first-touch
 * order. That makes resetStats()/resetContents() O(pages touched)
 * rather than O(memory size), which is what lets a pooled machine be
 * recycled for thousands of scenarios without re-walking a mostly
 * untouched megaword array. Slabs stay allocated across resets, so a
 * reused machine reaches a steady state with no per-scenario
 * allocation at all.
 */
class SharedMemory
{
  public:
    /** Page granularity (words) for dirty tracking and snapshots. */
    static constexpr std::size_t pageWords = 1024;

    /** Construct with @p words words, zero initialized. */
    explicit SharedMemory(std::size_t words);

    /** Size in words. */
    std::size_t size() const { return _words.size(); }

    /** Read the word at @p addr. */
    std::int64_t read(std::size_t addr);

    /** Write the word at @p addr. */
    void write(std::size_t addr, std::int64_t value);

    /** Read without touching access statistics (host-side inspection). */
    std::int64_t peek(std::size_t addr) const;

    /** Write without touching access statistics (host-side setup). */
    void poke(std::size_t addr, std::int64_t value);

    /**
     * Apply the statistics side of read() without returning the value:
     * exactly one access charged to @p addr. The windowed dispatcher
     * reads values race-free via peek() inside a window and replays
     * the statistics here afterwards; counts are commutative sums and
     * the snapshot encoders sort pages, so the deferred replay is
     * byte-identical to charging at access time.
     */
    void recordAccess(std::size_t addr);

    /** Total simulated accesses. */
    std::uint64_t totalAccesses() const { return _totalAccesses; }

    /** Highest access count of any single word (the hot spot). */
    std::uint64_t hotSpotAccesses() const;

    /** Address of the most-accessed word (lowest such address; 0 if
     *  none). */
    std::size_t hotSpotAddress() const;

    /** Forget access statistics, keep contents. O(pages touched). */
    void resetStats();

    /** Zero every word written since construction (or the previous
     *  resetContents). O(pages written). */
    void resetContents();

    /**
     * Pages whose access statistics were touched since the last
     * resetStats(), in first-touch order. Every simulated access
     * lands here, so per-line derived state (e.g. sharer masks) is
     * confined to these pages.
     */
    const std::vector<std::size_t> &touchedPages() const
    {
        return _statsPages;
    }

    /**
     * Serialize contents sparsely: only pages containing a nonzero
     * word are written (memory starts zeroed, so untouched pages are
     * implicit), plus the access counts in sorted address order so
     * the byte stream is deterministic.
     */
    void encodeState(snapshot::Encoder &e) const;

    /** Restore state captured with encodeState(). */
    bool decodeState(snapshot::Decoder &d);

    /**
     * Begin (or roll over) a delta epoch: from here on, pages whose
     * contents or statistics change are additionally recorded in the
     * epoch sets that encodeDeltaState() serializes. Called by the
     * checkpoint path right after each capture so an epoch always
     * spans exactly one checkpoint interval.
     */
    void beginDeltaEpoch();

    /** Stop epoch tracking entirely (checkpointing disabled). */
    void endDeltaEpoch();

    /**
     * Serialize only what changed since beginDeltaEpoch(): written
     * pages in full (absolute words — a page stored back to all
     * zeroes must still be represented), and for every stats-touched
     * page its complete nonzero count set (absolute; counts are
     * monotonic so entries never vanish), plus the total access
     * counter. Appliable on top of the epoch's starting state only.
     */
    void encodeDeltaState(snapshot::Encoder &e) const;

    /** Apply a delta captured with encodeDeltaState() on top of the
     *  current state. */
    bool decodeDeltaState(snapshot::Decoder &d);

  private:
    void touch(std::size_t addr);
    void markWritten(std::size_t addr);
    /** Count slab for @p page, allocated on first use. */
    std::uint64_t *countSlab(std::size_t page);
    /** Count slab for @p page, or nullptr if never allocated. */
    const std::uint64_t *countSlabIfAny(std::size_t page) const;

    std::vector<std::int64_t> _words;
    /** page -> slab slot + 1 into _countSlabs (0 = none yet). */
    std::vector<std::uint32_t> _countSlot;
    /** Concatenated page-sized access-count slabs. */
    std::vector<std::uint64_t> _countSlabs;
    std::vector<bool> _statsDirty;          ///< page touched since resetStats
    std::vector<std::size_t> _statsPages;   ///< touched, first-touch order
    std::vector<bool> _contentDirty;        ///< page written since reset
    std::vector<std::size_t> _contentPages; ///< written, first-touch order
    std::uint64_t _totalAccesses = 0;

    // Delta-epoch bookkeeping (not part of the serialized state): the
    // pages changed since the last checkpoint capture, maintained only
    // while a delta epoch is open.
    bool _epochTracking = false;
    std::vector<bool> _epochStatsDirty;
    std::vector<std::size_t> _epochStatsPages;
    std::vector<bool> _epochContentDirty;
    std::vector<std::size_t> _epochContentPages;
};

} // namespace fb::sim

#endif // FB_SIM_MEMORY_HH
