/**
 * @file
 * Flat shared word-addressed memory with hot-spot accounting.
 */

#ifndef FB_SIM_MEMORY_HH
#define FB_SIM_MEMORY_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "snapshot/codec.hh"

namespace fb::sim
{

/**
 * The shared memory of the simulated multiprocessor.
 *
 * Addresses are word indices (one word = one int64). Access counts
 * per word are kept so experiment E8 can report hot-spot traffic: a
 * software barrier hammers a single flag word, while the hardware
 * fuzzy barrier performs no shared accesses at all.
 */
class SharedMemory
{
  public:
    /** Construct with @p words words, zero initialized. */
    explicit SharedMemory(std::size_t words);

    /** Size in words. */
    std::size_t size() const { return _words.size(); }

    /** Read the word at @p addr. */
    std::int64_t read(std::size_t addr);

    /** Write the word at @p addr. */
    void write(std::size_t addr, std::int64_t value);

    /** Read without touching access statistics (host-side inspection). */
    std::int64_t peek(std::size_t addr) const;

    /** Write without touching access statistics (host-side setup). */
    void poke(std::size_t addr, std::int64_t value);

    /** Total simulated accesses. */
    std::uint64_t totalAccesses() const { return _totalAccesses; }

    /** Highest access count of any single word (the hot spot). */
    std::uint64_t hotSpotAccesses() const;

    /** Address of the most-accessed word (0 if none). */
    std::size_t hotSpotAddress() const;

    /** Forget access statistics, keep contents. */
    void resetStats();

    /**
     * Serialize contents sparsely: only pages containing a nonzero
     * word are written (memory starts zeroed, so untouched pages are
     * implicit), plus the access-count map in sorted order so the
     * byte stream is deterministic.
     */
    void encodeState(snapshot::Encoder &e) const;

    /** Restore state captured with encodeState(). */
    bool decodeState(snapshot::Decoder &d);

  private:
    void touch(std::size_t addr);

    std::vector<std::int64_t> _words;
    std::unordered_map<std::size_t, std::uint64_t> _accessCounts;
    std::uint64_t _totalAccesses = 0;
};

} // namespace fb::sim

#endif // FB_SIM_MEMORY_HH
