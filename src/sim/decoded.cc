#include "sim/decoded.hh"

#include <mutex>
#include <unordered_map>

#include "sim/processor.hh"
#include "snapshot/format.hh"
#include "support/logging.hh"

namespace fb::sim
{

using isa::Opcode;

namespace
{

bool
isPrivateOp(Opcode op)
{
    switch (op) {
      case Opcode::LD:
      case Opcode::ST:
      case Opcode::FAA:     // memory port (bus, caches, counters)
      case Opcode::SETTAG:
      case Opcode::SETMASK: // barrier-unit mutation
      case Opcode::HALT:
        return false;
      default:
        return true;
    }
}

} // namespace

std::uint64_t
programHash(const isa::Program &program)
{
    snapshot::Fnv1a h;
    h.mix(program.size());
    for (std::size_t i = 0; i < program.size(); ++i) {
        const isa::Instruction &instr = program.at(i);
        h.mix(static_cast<std::uint64_t>(instr.op));
        h.mix(static_cast<std::uint64_t>(instr.rd));
        h.mix(static_cast<std::uint64_t>(instr.rs1));
        h.mix(static_cast<std::uint64_t>(instr.rs2));
        h.mix(static_cast<std::uint64_t>(instr.imm));
        h.mix(instr.inRegion ? 1 : 0);
    }
    return h.value();
}

std::shared_ptr<const DecodedProgram>
decodeProgram(const isa::Program &program)
{
    FB_ASSERT(program.finalized(), "cannot decode an unfinalized program");

    // Process-wide memo keyed by the content hash. Decoding is a pure
    // function of the program and the block is immutable, so sharing
    // one block between machines is exactly what the ProgramCache
    // already does for interned sources; this extends the sharing to
    // callers that re-assemble the same program per run (the bench
    // harnesses and the differ's direct-assembly variants), where
    // re-decoding was a measurable fraction of short runs. The table
    // is wholesale-cleared at a size cap so a long fuzz campaign over
    // ever-fresh programs cannot grow it without bound. Trusting the
    // hash for equality is the backend's existing contract:
    // Machine::loadProgram validates caller-supplied blocks the same
    // way.
    static std::mutex memo_mu;
    static std::unordered_map<std::uint64_t,
                              std::shared_ptr<const DecodedProgram>>
        memo;
    constexpr std::size_t memoCap = 1024;
    const std::uint64_t hash = programHash(program);
    {
        std::lock_guard<std::mutex> lk(memo_mu);
        if (auto it = memo.find(hash); it != memo.end() &&
                                       it->second->code.size() ==
                                           program.size())
            return it->second;
    }

    auto decoded = std::make_shared<DecodedProgram>();
    decoded->code.reserve(program.size());
    for (std::size_t i = 0; i < program.size(); ++i) {
        const isa::Instruction &instr = program.at(i);
        // Operand ranges are the decoded loop's licence to index the
        // register file without per-access checks.
        FB_ASSERT(instr.rd >= 0 && instr.rd < isa::numRegisters &&
                      instr.rs1 >= 0 && instr.rs1 < isa::numRegisters &&
                      instr.rs2 >= 0 && instr.rs2 < isa::numRegisters,
                  "register operand out of range at pc " << i);
        DecodedInsn d;
        d.imm = instr.imm;
        d.cost = static_cast<std::uint32_t>(isa::baseLatency(instr.op));
        FB_ASSERT(d.cost >= 1, "zero base latency at pc " << i);
        d.op = instr.op;
        d.rd = instr.rd;
        d.rs1 = instr.rs1;
        d.rs2 = instr.rs2;
        d.privateOp = isPrivateOp(instr.op);
        d.staticRegion = instr.inRegion || instr.op == Opcode::BRENTER;
        d.bundleable = Processor::bundleable(instr);
        decoded->code.push_back(d);
    }
    decoded->sourceHash = hash;

    {
        std::lock_guard<std::mutex> lk(memo_mu);
        if (memo.size() >= memoCap)
            memo.clear();
        memo.emplace(hash, decoded);
    }
    return decoded;
}

} // namespace fb::sim
