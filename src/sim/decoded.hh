/**
 * @file
 * Pre-decoded threaded-code representation of an isa::Program.
 *
 * The per-cycle interpreter pays a fetch/decode/classify tax on every
 * issue: bounds-check the PC, load the Instruction, switch on the
 * opcode, look up its base latency, and re-derive the region/private
 * classification from scratch. DecodedProgram hoists all of that to
 * load time: each instruction becomes a flat DecodedInsn with resolved
 * operands, its precomputed latency, and the three classification bits
 * the hot paths need (may-execute-privately, statically-in-region,
 * bundleable). Processor::runPrivate dispatches over this array with a
 * computed-goto (threaded-code) loop — see processor.cc — executing
 * whole straight-line private stretches in one call.
 *
 * A DecodedProgram is immutable after decode and carries a content
 * hash of its source program, so decoded blocks can be shared freely
 * across machines (exec::ProgramCache interns them next to the
 * assembled programs) and a mismatched pairing is caught at load.
 */

#ifndef FB_SIM_DECODED_HH
#define FB_SIM_DECODED_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "isa/program.hh"

namespace fb::sim
{

/** One pre-decoded instruction: operands, latency, classification. */
struct DecodedInsn
{
    std::int64_t imm = 0;       ///< resolved immediate / branch target
    std::uint32_t cost = 0;     ///< isa::baseLatency(op), always >= 1
    isa::Opcode op{};           ///< dispatch index (dense)
    std::int8_t rd = 0;
    std::int8_t rs1 = 0;
    std::int8_t rs2 = 0;
    /**
     * True when the op never touches machine-shared state: everything
     * except LD/ST/FAA (memory port), SETTAG/SETMASK (barrier-unit
     * mutation) and HALT — the exclusion list of
     * Processor::isPrivateTick. Only these ops may execute inside the
     * decoded private loop; the rest bounce back to the coordinator.
     */
    bool privateOp = false;
    /**
     * Statically in a barrier region: the instruction's region bit or
     * the BRENTER marker itself. The dynamic contributions (marker
     * flag, inherited call-site region) are per-processor state and
     * stay runtime inputs.
     */
    bool staticRegion = false;
    /** May occupy a non-leading bundle slot (Processor::bundleable). */
    bool bundleable = false;
};

/** A fully decoded, immutable program. */
struct DecodedProgram
{
    std::vector<DecodedInsn> code;
    /** Content hash of the source program (programHash). */
    std::uint64_t sourceHash = 0;

    std::size_t size() const { return code.size(); }
};

/**
 * Content hash of a finalized program (FNV-1a over every instruction
 * field). Used to pin a DecodedProgram to the exact program it was
 * decoded from when the two travel separately (ProgramCache sharing).
 */
std::uint64_t programHash(const isa::Program &program);

/** Decode @p program (must be finalized) into threaded-code form. */
std::shared_ptr<const DecodedProgram>
decodeProgram(const isa::Program &program);

} // namespace fb::sim

#endif // FB_SIM_DECODED_HH
