/**
 * @file
 * The simulated in-order processor core.
 */

#ifndef FB_SIM_PROCESSOR_HH
#define FB_SIM_PROCESSOR_HH

#include <array>
#include <cstdint>
#include <vector>

#include "barrier/unit.hh"
#include "isa/program.hh"
#include "sim/config.hh"
#include "sim/decoded.hh"
#include "snapshot/codec.hh"
#include "support/random.hh"

namespace fb::sim
{

/**
 * Timing interface to the memory hierarchy (cache + bus + DRAM),
 * implemented by the Machine.
 */
class MemoryPort
{
  public:
    virtual ~MemoryPort() = default;

    /** Load a word; @p cycles receives the access latency. */
    virtual std::int64_t read(std::size_t addr, std::uint64_t now,
                              std::uint32_t &cycles) = 0;

    /** Store a word; @p cycles receives the access latency. */
    virtual void write(std::size_t addr, std::int64_t value,
                       std::uint64_t now, std::uint32_t &cycles) = 0;

    /**
     * True if a load of @p addr is coherence- and timing-inert for
     * this processor right now: it would hit the private cache (so no
     * bus transaction, no allocation, and the sharer mask already
     * records this cache). Combined with the write horizon this
     * admits loads onto the shard-private fast path. Default: never.
     */
    virtual bool privateReadable(std::size_t addr) const
    {
        (void)addr;
        return false;
    }
};

/** Observer for barrier-related execution events (safety oracle). */
class ExecutionObserver
{
  public:
    virtual ~ExecutionObserver() = default;

    /** Processor @p p asserted readiness at @p cycle. */
    virtual void onArrive(int p, std::uint64_t cycle) = 0;

    /** Processor @p p crossed the barrier (first post-region
     * non-barrier instruction) at @p cycle. */
    virtual void onCross(int p, std::uint64_t cycle) = 0;
};

/** What a core did during one tick. */
enum class TickResult
{
    Halted,      ///< the stream has ended
    Progress,    ///< executing (busy or issued an instruction)
    BarrierWait, ///< blocked waiting for barrier synchronization
};

/**
 * A scalar in-order core executing one Program.
 *
 * Timing model: each instruction occupies the core for its base
 * latency plus memory-hierarchy latency plus optional random jitter.
 * The fuzzy-barrier rules from section 2 of the paper are enforced at
 * issue: a region instruction arms the barrier unit (readiness is
 * delayed by pipeline drain when pipelineDepth > 1), and a non-region
 * instruction after an armed region may only issue once the unit has
 * synchronized — otherwise the core stalls under the configured
 * StallModel.
 */
class Processor
{
  public:
    /**
     * @param id processor index
     * @param program finalized instruction stream
     * @param unit this processor's barrier hardware
     * @param mem timing port to the memory hierarchy
     * @param pipeline_depth in-order pipeline depth (>= 1)
     * @param stall stall cost model
     * @param jitter per-instruction jitter source
     * @param jitter_mean mean jitter cycles (0 = none)
     */
    Processor(int id, const isa::Program &program,
              barrier::BarrierUnit &unit, MemoryPort &mem,
              int pipeline_depth, StallModel stall, RandomSource jitter,
              double jitter_mean, std::uint64_t interrupt_period = 0,
              std::int64_t isr_entry = -1, int issue_width = 1);

    /** Install the (optional) execution observer. */
    void setObserver(ExecutionObserver *observer) { _observer = observer; }

    /**
     * Return every mutable field (registers, PC, FSM, pipeline and
     * interrupt machinery, counters) to its construction-time value
     * and take fresh timing parameters — equivalent to re-running the
     * constructor against the same program reference and barrier
     * unit. Machine reuse: the Machine resets the referenced program
     * slot and unit separately, then calls this.
     */
    void reset(int pipeline_depth, StallModel stall, RandomSource jitter,
               double jitter_mean, std::uint64_t interrupt_period = 0,
               std::int64_t isr_entry = -1, int issue_width = 1);

    /** Advance one cycle. */
    TickResult tick(std::uint64_t now);

    /**
     * Earliest cycle after @p now at which tick() does anything other
     * than the fixed per-cycle wait accounting of the current state
     * (UINT64_MAX = never: blocked on an external event such as
     * barrier delivery). A busy execute wakes when the countdown
     * ends; a pending arrival fires at its drain cycle; a stalled
     * core wakes at its next timer interrupt or when the unit has
     * already synchronized. The fast-forward core jumps to the
     * minimum of these across processors (plus network / injector /
     * watchdog events) and calls advanceWait() for the gap.
     */
    std::uint64_t nextEventCycle(std::uint64_t now) const;

    /**
     * Bulk-apply @p cycles consecutive pure-wait ticks of the current
     * state: exactly the counter updates (busy countdown, barrier
     * wait, stall, context-switch cycles) that @p cycles calls to
     * tick() would have made, given that no event fires in between —
     * the caller guarantees this by never skipping past
     * nextEventCycle(). Keeps every RunResult counter bit-identical
     * to the per-cycle loop.
     */
    void advanceWait(std::uint64_t cycles);

    /**
     * What tick() reports on a pure-wait cycle of the current state:
     * true for Progress (busy countdowns, pipeline drains, context
     * save/restore), false for BarrierWait (hardware stall, suspended
     * task) or Halted. The fast-forward core needs this to evaluate
     * the legacy loop's deadlock condition for cycles it would skip:
     * a machine whose waiters all report BarrierWait deadlocks on the
     * very next cycle, so no skip may jump past it.
     */
    bool progressWhileWaiting() const
    {
        if (_halted)
            return false;
        switch (_state) {
          case CoreState::Running:
          case CoreState::DrainWait:
          case CoreState::SwSaving:
          case CoreState::SwRestoring:
            return true;
          case CoreState::HwStalled:
          case CoreState::SwSuspended:
            return false;
        }
        return false;
    }

    /**
     * True when tick(@p now) would touch only this processor's own
     * state: no memory-port access, no barrier-unit mutation, no halt
     * and no observer callback. Such a tick may be executed by a
     * shard thread ahead of the global clock (section 17): its effect
     * is invariant under any interleaving with other processors'
     * actions, and the predicate itself is skew-invariant — every
     * input it reads is either processor-private or (for the unit's
     * participating tag and the NonBarrier/armed distinction) can
     * only be changed by this processor's own excluded actions, never
     * by a concurrent delivery, which moves Ready to Synced without
     * crossing the NonBarrier boundary.
     *
     * Conservative: may return false for some ticks that would in
     * fact be private (costing speedup, never correctness).
     */
    bool isPrivateTick(std::uint64_t now) const;

    /**
     * Run consecutive private ticks from cycle @p next up to
     * (excluding) @p stop, returning the first cycle not executed —
     * either @p stop or the first cycle whose tick is not private.
     * Busy countdowns are bulk-applied via advanceWait(), which is
     * bit-identical to ticking them one by one. With a decoded
     * program installed (and scalar issue), the stretch runs through
     * the threaded-code loop instead of per-cycle tick() calls —
     * same state transitions, same counters, same PRNG draws.
     */
    std::uint64_t runPrivate(std::uint64_t next, std::uint64_t stop);

    /**
     * Install (or clear, with nullptr) the pre-decoded twin of the
     * bound program. The caller owns the DecodedProgram's lifetime
     * (the Machine keeps a shared_ptr per slot) and guarantees it was
     * decoded from the exact program this core executes.
     */
    void setDecoded(const DecodedProgram *decoded) { _decoded = decoded; }

    /** True if @p instr may occupy a non-leading bundle slot. */
    static bool bundleable(const isa::Instruction &instr);

    /**
     * Publish the private-read horizon for the coming shard window:
     * loads at cycles strictly below @p horizon may execute on the
     * private fast path when they also hit the own cache (see
     * MemoryPort::privateReadable). Recomputed by the Machine before
     * every window dispatch; per-window scratch, never serialized.
     */
    void setPrivateReadHorizon(std::uint64_t horizon)
    {
        _privReadHorizon = horizon;
    }

    /**
     * True while blocked at a barrier (hardware stall or suspended
     * software task): the core cannot execute a store before a sync
     * delivery or an interrupt wakes it. Input to the Machine's
     * write-horizon computation.
     */
    bool blockedAtBarrier() const
    {
        return _state == CoreState::HwStalled ||
               _state == CoreState::SwSuspended;
    }

    /** True once HALT executed or the stream ran off the end. */
    bool halted() const { return _halted; }

    /** Processor index. */
    int id() const { return _id; }

    /** Register file inspection (r0 is always 0). */
    std::int64_t reg(int idx) const;

    /** Set a register before the run starts (argument passing). */
    void setReg(int idx, std::int64_t value);

    /** Dynamic instructions executed. */
    std::uint64_t instructions() const { return _instructions; }

    /** Cycles blocked on barrier synchronization (incl. save/restore). */
    std::uint64_t barrierWaitCycles() const { return _barrierWaitCycles; }

    /** Cycles spent on context save/restore (software stall model). */
    std::uint64_t contextSwitchCycles() const
    {
        return _contextSwitchCycles;
    }

    /** Number of context save/restore pairs performed. */
    std::uint64_t contextSwitches() const { return _contextSwitches; }

    /** Interrupts taken. */
    std::uint64_t interruptsTaken() const { return _interruptsTaken; }

    /** Current procedure call depth. */
    std::size_t callDepth() const { return _callStack.size(); }

    /** True while executing an interrupt service routine. */
    bool inIsr() const { return _inIsr; }

    /** Current program counter (for debugging / deadlock reports). */
    std::size_t pc() const { return _pc; }

    /**
     * Fault injection: fail-stop the core immediately. The barrier
     * unit's state is left latched exactly as the dying hardware
     * would leave it — a processor killed while Ready keeps
     * broadcasting its pulse, which is precisely the hazard the
     * watchdog + epoch recovery protocol exists to clear.
     */
    void kill() { _halted = true; }

    /**
     * Fault injection: request an interrupt regardless of the timer
     * period. Taken at the next issue opportunity if an ISR entry is
     * configured (silently dropped otherwise); does not disturb the
     * periodic schedule.
     */
    void forceInterrupt() { _forceInterrupt = true; }

    /**
     * Serialize the full mutable core state (registers, PC, FSM,
     * pipeline countdowns, interrupt machinery, jitter PRNG state and
     * counters). The Program itself is not captured — restore requires
     * the host to have loaded identical programs, which the snapshot
     * header's config fingerprint enforces.
     */
    void encodeState(snapshot::Encoder &e) const;

    /** Restore state captured with encodeState(). */
    bool decodeState(snapshot::Decoder &d);

  private:
    enum class CoreState
    {
        Running,      ///< normal execution
        DrainWait,    ///< pipelined: waiting for readiness drain
        HwStalled,    ///< hardware stall at region exit
        SwSaving,     ///< software stall: context save in progress
        SwSuspended,  ///< software stall: task switched out
        SwRestoring,  ///< software stall: context restore in progress
    };

    /** Fire a pending (pipeline-delayed) arrival if due. */
    void maybeArrive(std::uint64_t now);

    /** Vector to the ISR if a timer interrupt is due. */
    bool maybeInterrupt(std::uint64_t now);

    /** Issue and execute the instruction at _pc. */
    TickResult issue(std::uint64_t now);

    /** Issue up to issueWidth independent instructions this cycle. */
    TickResult issueBundle(std::uint64_t now);

    /**
     * The threaded-code core of runPrivate(): execute consecutive
     * private ticks from @p next (whose tick the caller has verified
     * is private, with the core Running) to @p stop through the
     * decoded dispatch loop. Returns the first cycle not executed;
     * always makes progress.
     */
    std::uint64_t runDecoded(std::uint64_t next, std::uint64_t stop);

    /** Begin a barrier-exit stall under the configured model. */
    TickResult beginStall(std::uint64_t now);

    /** Per-instruction cost beyond the busy countdown already paid. */
    std::uint32_t executeAt(std::uint64_t now);

    int _id;
    const isa::Program &_program;
    /** Pre-decoded twin of _program (optional; owned by the Machine). */
    const DecodedProgram *_decoded = nullptr;
    barrier::BarrierUnit &_unit;
    MemoryPort &_mem;
    int _pipelineDepth;
    StallModel _stall;
    RandomSource _jitter;
    double _jitterMean;
    std::uint64_t _interruptPeriod;
    std::int64_t _isrEntry;
    int _issueWidth;
    ExecutionObserver *_observer = nullptr;

    std::array<std::int64_t, isa::numRegisters> _regs{};
    std::size_t _pc = 0;
    bool _halted = false;
    CoreState _state = CoreState::Running;
    std::uint32_t _busyCycles = 0;

    /** Marker-encoding region flag (BRENTER/BREXIT). */
    bool _markerRegion = false;

    /**
     * Region status inherited by procedures: each CALL pushes the
     * call site's effective region flag; instructions execute
     * in-region while the top of the stack is true (section 9).
     */
    std::vector<bool> _callStack;

    /** Effective region flag of the instruction being executed. */
    bool _issueEffRegion = false;

    /** Cost of the most recently issued instruction (bundling). */
    std::uint32_t _lastIssueCost = 0;

    /** Interrupt state. */
    bool _inIsr = false;
    std::size_t _savedPc = 0;
    std::uint64_t _nextInterrupt = 0;
    bool _forceInterrupt = false;

    /** Pipelined readiness: cycle at which arrive() fires. */
    bool _arrivePending = false;
    std::uint64_t _arriveCycle = 0;

    /** Completion cycle of the last issued non-region instruction. */
    std::uint64_t _lastNonRegionComplete = 0;

    /** Private-read horizon for the current shard window (cycles
     * strictly below it may load on the private path; 0 = none).
     * Per-window scratch: recomputed before every dispatch, not
     * serialized, reset() clears it. */
    std::uint64_t _privReadHorizon = 0;

    std::uint64_t _instructions = 0;
    std::uint64_t _barrierWaitCycles = 0;
    std::uint64_t _contextSwitchCycles = 0;
    std::uint64_t _contextSwitches = 0;
    std::uint64_t _interruptsTaken = 0;
};

} // namespace fb::sim

#endif // FB_SIM_PROCESSOR_HH
