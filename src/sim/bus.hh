/**
 * @file
 * Shared memory bus with simple FIFO contention.
 */

#ifndef FB_SIM_BUS_HH
#define FB_SIM_BUS_HH

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "snapshot/codec.hh"

namespace fb::sim
{

/** Interconnect contention model. */
enum class BusKind
{
    /**
     * One shared bus: every cache miss serializes against every
     * other. The Encore/Sequent-class machine and the source of the
     * E8 hot-spot serialization.
     */
    Shared,

    /**
     * Banked / multistage interconnect: requests serialize only
     * against requests for the same word (bank conflicts). Under this
     * model only genuinely hot words pay contention — the setting of
     * the Yew/Tzeng/Lawrie hot-spot analysis the paper cites, where
     * dissemination barriers achieve logarithmic latency.
     */
    Banked,
};

/**
 * The interconnect between processors and memory. Each cache miss
 * occupies its arbitration domain (the whole bus, or one bank) for a
 * fixed service time; overlapping requests queue behind each other.
 */
class SharedBus
{
  public:
    /**
     * @param service_cycles occupancy per request
     * @param kind contention model
     */
    explicit SharedBus(std::uint32_t service_cycles,
                       BusKind kind = BusKind::Shared)
        : _serviceCycles(service_cycles), _kind(kind)
    {
    }

    /**
     * Request service for word @p addr at time @p now. Returns the
     * queueing delay in cycles (0 if free) and occupies the
     * arbitration domain for the service time starting when the
     * request is granted.
     */
    std::uint64_t
    request(std::uint64_t now, std::size_t addr)
    {
        ++_requests;
        std::uint64_t &busy_until =
            _kind == BusKind::Shared ? _globalBusyUntil
                                     : _bankBusyUntil[addr];
        std::uint64_t start = now > busy_until ? now : busy_until;
        std::uint64_t wait = start - now;
        _queueDelay += wait;
        busy_until = start + _serviceCycles;
        return wait;
    }

    /** Total requests seen. */
    std::uint64_t requests() const { return _requests; }

    /** Total cycles requests spent queued. */
    std::uint64_t totalQueueDelay() const { return _queueDelay; }

    /** Serialize busy state and counters (banks sorted by address). */
    void encodeState(snapshot::Encoder &e) const
    {
        e.u64(_globalBusyUntil);
        std::vector<std::pair<std::size_t, std::uint64_t>> banks(
            _bankBusyUntil.begin(), _bankBusyUntil.end());
        std::sort(banks.begin(), banks.end());
        e.u64(banks.size());
        for (const auto &[addr, until] : banks) {
            e.u64(addr);
            e.u64(until);
        }
        e.u64(_requests);
        e.u64(_queueDelay);
    }

    /** Restore state captured with encodeState(). */
    bool decodeState(snapshot::Decoder &d)
    {
        _globalBusyUntil = d.u64();
        _bankBusyUntil.clear();
        const std::uint64_t banks = d.u64();
        for (std::uint64_t k = 0; k < banks && d.ok(); ++k) {
            const std::uint64_t addr = d.u64();
            _bankBusyUntil[static_cast<std::size_t>(addr)] = d.u64();
        }
        _requests = d.u64();
        _queueDelay = d.u64();
        return d.ok();
    }

  private:
    std::uint32_t _serviceCycles;
    BusKind _kind;
    std::uint64_t _globalBusyUntil = 0;
    std::unordered_map<std::size_t, std::uint64_t> _bankBusyUntil;
    std::uint64_t _requests = 0;
    std::uint64_t _queueDelay = 0;
};

} // namespace fb::sim

#endif // FB_SIM_BUS_HH
