/**
 * @file
 * Shared memory bus with simple FIFO contention.
 */

#ifndef FB_SIM_BUS_HH
#define FB_SIM_BUS_HH

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "snapshot/codec.hh"

namespace fb::sim
{

/** Interconnect contention model. */
enum class BusKind
{
    /**
     * One shared bus: every cache miss serializes against every
     * other. The Encore/Sequent-class machine and the source of the
     * E8 hot-spot serialization.
     */
    Shared,

    /**
     * Banked / multistage interconnect: requests serialize only
     * against requests for the same word (bank conflicts). Under this
     * model only genuinely hot words pay contention — the setting of
     * the Yew/Tzeng/Lawrie hot-spot analysis the paper cites, where
     * dissemination barriers achieve logarithmic latency.
     */
    Banked,
};

/**
 * The interconnect between processors and memory. Each cache miss
 * occupies its arbitration domain (the whole bus, or one bank) for a
 * fixed service time; overlapping requests queue behind each other.
 *
 * Per-bank busy times live in lazily-allocated page-sized slabs
 * indexed by a flat page->slot table (mirroring SharedMemory's count
 * pages) instead of a hash map: the banked model indexes by word
 * address, so the busy table is exactly as sparse as the touched
 * footprint, and reset()/decodeState() only re-zero the pages a run
 * actually hit. Slabs persist across reset() so a pooled machine
 * stops allocating once warm.
 */
class SharedBus
{
  public:
    /**
     * @param service_cycles occupancy per request
     * @param kind contention model
     */
    explicit SharedBus(std::uint32_t service_cycles,
                       BusKind kind = BusKind::Shared)
        : _serviceCycles(service_cycles), _kind(kind)
    {
    }

    /**
     * Request service for word @p addr at time @p now. Returns the
     * queueing delay in cycles (0 if free) and occupies the
     * arbitration domain for the service time starting when the
     * request is granted.
     */
    std::uint64_t
    request(std::uint64_t now, std::size_t addr)
    {
        ++_requests;
        std::uint64_t &busy_until = _kind == BusKind::Shared
                                        ? _globalBusyUntil
                                        : bankBusy(addr);
        std::uint64_t start = now > busy_until ? now : busy_until;
        std::uint64_t wait = start - now;
        _queueDelay += wait;
        busy_until = start + _serviceCycles;
        return wait;
    }

    /** Total requests seen. */
    std::uint64_t requests() const { return _requests; }

    /** Total cycles requests spent queued. */
    std::uint64_t totalQueueDelay() const { return _queueDelay; }

    /**
     * Reconfigure and clear — equivalent to freshly constructing
     * SharedBus(service_cycles, kind), except bank slabs stay
     * allocated for reuse. O(bank pages touched).
     */
    void
    reset(std::uint32_t service_cycles, BusKind kind)
    {
        _serviceCycles = service_cycles;
        _kind = kind;
        _globalBusyUntil = 0;
        _requests = 0;
        _queueDelay = 0;
        clearBanks();
        endDeltaEpoch();
    }

    /** Serialize busy state and counters (banks sorted by address). */
    void
    encodeState(snapshot::Encoder &e) const
    {
        e.u64(_globalBusyUntil);
        std::vector<std::size_t> pages(_bankPages);
        std::sort(pages.begin(), pages.end());
        std::uint64_t entries = 0;
        for (std::size_t page : pages) {
            const std::uint64_t *slab =
                &_bankSlabs[(_bankSlot[page] - 1) * bankPageWords];
            for (std::size_t i = 0; i < bankPageWords; ++i)
                if (slab[i] != 0)
                    ++entries;
        }
        e.u64(entries);
        for (std::size_t page : pages) {
            const std::uint64_t *slab =
                &_bankSlabs[(_bankSlot[page] - 1) * bankPageWords];
            for (std::size_t i = 0; i < bankPageWords; ++i) {
                if (slab[i] != 0) {
                    e.u64(page * bankPageWords + i);
                    e.u64(slab[i]);
                }
            }
        }
        e.u64(_requests);
        e.u64(_queueDelay);
    }

    /** Restore state captured with encodeState(). */
    bool
    decodeState(snapshot::Decoder &d)
    {
        _globalBusyUntil = d.u64();
        clearBanks();
        const std::uint64_t banks = d.u64();
        for (std::uint64_t k = 0; k < banks && d.ok(); ++k) {
            const std::uint64_t addr = d.u64();
            bankBusy(static_cast<std::size_t>(addr)) = d.u64();
        }
        _requests = d.u64();
        _queueDelay = d.u64();
        return d.ok();
    }

    /** Begin (or roll over) a delta epoch (see SharedMemory). */
    void
    beginDeltaEpoch()
    {
        for (std::size_t page : _epochBankPages)
            _epochBankDirty[page] = false;
        _epochBankPages.clear();
        _epochBankDirty.resize(_bankDirty.size(), false);
        _epochTracking = true;
    }

    /** Stop epoch tracking entirely. */
    void
    endDeltaEpoch()
    {
        for (std::size_t page : _epochBankPages)
            _epochBankDirty[page] = false;
        _epochBankPages.clear();
        _epochTracking = false;
    }

    /**
     * Serialize only bank pages touched since beginDeltaEpoch():
     * the epoch page list, every nonzero busy-until on those pages
     * (absolute), and the scalars. Apply zeroes each listed page
     * first — a bank only ever returns to zero via reset(), which
     * ends the epoch, so absolute nonzero re-listing is complete.
     */
    void
    encodeDeltaState(snapshot::Encoder &e) const
    {
        e.u64(_globalBusyUntil);
        std::vector<std::size_t> pages(_epochBankPages);
        std::sort(pages.begin(), pages.end());
        e.u64(pages.size());
        for (std::size_t page : pages)
            e.u64(page);
        std::uint64_t entries = 0;
        for (std::size_t page : pages) {
            const std::uint64_t *slab =
                &_bankSlabs[(_bankSlot[page] - 1) * bankPageWords];
            for (std::size_t i = 0; i < bankPageWords; ++i)
                if (slab[i] != 0)
                    ++entries;
        }
        e.u64(entries);
        for (std::size_t page : pages) {
            const std::uint64_t *slab =
                &_bankSlabs[(_bankSlot[page] - 1) * bankPageWords];
            for (std::size_t i = 0; i < bankPageWords; ++i) {
                if (slab[i] != 0) {
                    e.u64(page * bankPageWords + i);
                    e.u64(slab[i]);
                }
            }
        }
        e.u64(_requests);
        e.u64(_queueDelay);
    }

    /** Apply a delta captured with encodeDeltaState(). */
    bool
    decodeDeltaState(snapshot::Decoder &d)
    {
        _globalBusyUntil = d.u64();
        const std::uint64_t pages = d.u64();
        for (std::uint64_t k = 0; k < pages && d.ok(); ++k) {
            const std::uint64_t page = d.u64();
            if (!d.ok())
                return false;
            // Materialize the page (and its dirty-list membership),
            // then zero it so absent entries read as zero.
            std::uint64_t &first = bankBusy(
                static_cast<std::size_t>(page) * bankPageWords);
            std::uint64_t *slab = &first;
            std::fill(slab, slab + bankPageWords, 0);
        }
        const std::uint64_t banks = d.u64();
        for (std::uint64_t k = 0; k < banks && d.ok(); ++k) {
            const std::uint64_t addr = d.u64();
            bankBusy(static_cast<std::size_t>(addr)) = d.u64();
        }
        _requests = d.u64();
        _queueDelay = d.u64();
        return d.ok();
    }

  private:
    /** Bank-busy slab page granularity (words). */
    static constexpr std::size_t bankPageWords = 1024;

    /** Busy-until slot for @p addr, allocating its page on demand
     *  and marking the page dirty. */
    std::uint64_t &
    bankBusy(std::size_t addr)
    {
        const std::size_t page = addr / bankPageWords;
        if (page >= _bankSlot.size()) {
            _bankSlot.resize(page + 1, 0);
            _bankDirty.resize(page + 1, false);
            if (_epochTracking)
                _epochBankDirty.resize(page + 1, false);
        }
        std::uint32_t slot = _bankSlot[page];
        if (slot == 0) {
            _bankSlabs.resize(_bankSlabs.size() + bankPageWords, 0);
            slot = static_cast<std::uint32_t>(
                _bankSlabs.size() / bankPageWords);
            _bankSlot[page] = slot;
        }
        if (!_bankDirty[page]) {
            _bankDirty[page] = true;
            _bankPages.push_back(page);
        }
        if (_epochTracking && !_epochBankDirty[page]) {
            _epochBankDirty[page] = true;
            _epochBankPages.push_back(page);
        }
        return _bankSlabs[(slot - 1) * bankPageWords + addr % bankPageWords];
    }

    /** Zero every touched bank page; keep slabs allocated. */
    void
    clearBanks()
    {
        for (std::size_t page : _bankPages) {
            std::uint64_t *slab =
                &_bankSlabs[(_bankSlot[page] - 1) * bankPageWords];
            std::fill(slab, slab + bankPageWords, 0);
            _bankDirty[page] = false;
        }
        _bankPages.clear();
    }

    std::uint32_t _serviceCycles;
    BusKind _kind;
    std::uint64_t _globalBusyUntil = 0;
    /** page -> slab slot + 1 into _bankSlabs (0 = none yet). */
    std::vector<std::uint32_t> _bankSlot;
    std::vector<std::uint64_t> _bankSlabs;
    std::vector<bool> _bankDirty;
    std::vector<std::size_t> _bankPages; ///< touched, first-touch order
    std::uint64_t _requests = 0;
    std::uint64_t _queueDelay = 0;

    // Delta-epoch bookkeeping (not serialized): bank pages touched
    // since the last checkpoint capture.
    bool _epochTracking = false;
    std::vector<bool> _epochBankDirty;
    std::vector<std::size_t> _epochBankPages;
};

} // namespace fb::sim

#endif // FB_SIM_BUS_HH
