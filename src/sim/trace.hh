/**
 * @file
 * Barrier-state execution trace and ASCII timeline renderer.
 *
 * Records each processor's barrier FSM state every cycle and renders
 * a Gantt-style timeline — the fastest way to *see* the fuzzy barrier
 * working: ready processors keep running inside their regions ('r'),
 * only occasionally degenerating to a stall ('#').
 */

#ifndef FB_SIM_TRACE_HH
#define FB_SIM_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "barrier/state.hh"

namespace fb::sim
{

/**
 * A compact per-cycle record of every processor's barrier state.
 */
class BarrierTrace
{
  public:
    /** Symbols used in the rendered timeline. */
    static constexpr char symNonBarrier = '.';
    static constexpr char symReady = 'r';
    static constexpr char symSynced = 's';
    static constexpr char symStalled = '#';
    static constexpr char symHalted = ' ';

    explicit BarrierTrace(int num_processors)
        : _numProcessors(num_processors)
    {
    }

    /** Record one cycle's states. @p halted flags dead processors;
     * @p sync_delivered marks cycles where a group synchronized. */
    void record(const std::vector<barrier::BarrierState> &states,
                const std::vector<bool> &halted, bool sync_delivered);

    /** Number of recorded cycles. */
    std::size_t cycles() const { return _syncMarks.size(); }

    /**
     * Render the timeline: one row per processor plus a sync-marker
     * row ('|' where a group synchronized). If the trace is longer
     * than @p max_width cycles, it is downsampled by taking the
     * "worst" state in each bucket (stall > ready > synced > rest),
     * so stalls never disappear from the picture.
     */
    std::string render(std::size_t max_width = 100) const;

  private:
    static char symbolFor(barrier::BarrierState state, bool halted);

    /** Pick the most severe of two symbols for downsampling. */
    static char worst(char a, char b);

    int _numProcessors;
    /** _rows[p][cycle] = symbol. */
    std::vector<std::string> _rows;
    std::vector<bool> _syncMarks;
};

} // namespace fb::sim

#endif // FB_SIM_TRACE_HH
