#include "sim/processor.hh"

#include <algorithm>
#include <limits>

#include "support/logging.hh"

namespace fb::sim
{

using isa::Instruction;
using isa::Opcode;

Processor::Processor(int id, const isa::Program &program,
                     barrier::BarrierUnit &unit, MemoryPort &mem,
                     int pipeline_depth, StallModel stall,
                     RandomSource jitter, double jitter_mean,
                     std::uint64_t interrupt_period,
                     std::int64_t isr_entry, int issue_width)
    : _id(id), _program(program), _unit(unit), _mem(mem),
      _pipelineDepth(pipeline_depth), _stall(stall), _jitter(jitter),
      _jitterMean(jitter_mean), _interruptPeriod(interrupt_period),
      _isrEntry(isr_entry), _issueWidth(issue_width),
      _nextInterrupt(interrupt_period)
{
    FB_ASSERT(pipeline_depth >= 1, "pipeline depth must be >= 1");
    FB_ASSERT(issue_width >= 1, "issue width must be >= 1");
    FB_ASSERT(program.finalized(), "program must be finalized");
    FB_ASSERT(interrupt_period == 0 || isr_entry >= 0,
              "interrupts enabled but no ISR entry point");
}

void
Processor::reset(int pipeline_depth, StallModel stall,
                 RandomSource jitter, double jitter_mean,
                 std::uint64_t interrupt_period, std::int64_t isr_entry,
                 int issue_width)
{
    FB_ASSERT(pipeline_depth >= 1, "pipeline depth must be >= 1");
    FB_ASSERT(issue_width >= 1, "issue width must be >= 1");
    FB_ASSERT(_program.finalized(), "program must be finalized");
    FB_ASSERT(interrupt_period == 0 || isr_entry >= 0,
              "interrupts enabled but no ISR entry point");
    _pipelineDepth = pipeline_depth;
    _stall = stall;
    _jitter = jitter;
    _jitterMean = jitter_mean;
    _interruptPeriod = interrupt_period;
    _isrEntry = isr_entry;
    _issueWidth = issue_width;
    _observer = nullptr;
    _regs.fill(0);
    _pc = 0;
    _halted = false;
    _state = CoreState::Running;
    _busyCycles = 0;
    _markerRegion = false;
    _callStack.clear();
    _issueEffRegion = false;
    _lastIssueCost = 0;
    _inIsr = false;
    _savedPc = 0;
    _nextInterrupt = interrupt_period;
    _forceInterrupt = false;
    _arrivePending = false;
    _arriveCycle = 0;
    _lastNonRegionComplete = 0;
    _privReadHorizon = 0;
    _instructions = 0;
    _barrierWaitCycles = 0;
    _contextSwitchCycles = 0;
    _contextSwitches = 0;
    _interruptsTaken = 0;
}

bool
Processor::bundleable(const isa::Instruction &instr)
{
    switch (instr.op) {
      case Opcode::ADD:
      case Opcode::SUB:
      case Opcode::MUL:
      case Opcode::DIV:
      case Opcode::AND:
      case Opcode::OR:
      case Opcode::XOR:
      case Opcode::SLT:
      case Opcode::SHL:
      case Opcode::SHR:
      case Opcode::ADDI:
      case Opcode::MULI:
      case Opcode::SLTI:
      case Opcode::LI:
      case Opcode::MOV:
      case Opcode::NOP:
      case Opcode::BEQ:
      case Opcode::BNE:
      case Opcode::BLT:
      case Opcode::BGE:
      case Opcode::JMP:
        return true;
      default:
        // Memory ops (single port), barrier control, linkage, and
        // HALT issue alone.
        return false;
    }
}

bool
Processor::maybeInterrupt(std::uint64_t now)
{
    if (_inIsr)
        return false;
    bool periodic = _interruptPeriod != 0 && now >= _nextInterrupt;
    if (!periodic && !_forceInterrupt)
        return false;
    if (_isrEntry < 0 ||
        static_cast<std::size_t>(_isrEntry) >= _program.size()) {
        _forceInterrupt = false;  // nowhere to vector: drop it
        return false;
    }
    // Vector to the service routine. The ISR runs outside the barrier
    // region structure: no arrivals, no crossing checks, and the
    // barrier unit's state is left untouched until IRET.
    _savedPc = _pc;
    _pc = static_cast<std::size_t>(_isrEntry);
    _inIsr = true;
    if (periodic)
        _nextInterrupt += _interruptPeriod;
    _forceInterrupt = false;
    ++_interruptsTaken;
    return true;
}

std::int64_t
Processor::reg(int idx) const
{
    FB_ASSERT(idx >= 0 && idx < isa::numRegisters, "bad register");
    return idx == 0 ? 0 : _regs[static_cast<std::size_t>(idx)];
}

void
Processor::setReg(int idx, std::int64_t value)
{
    FB_ASSERT(idx > 0 && idx < isa::numRegisters, "bad register");
    _regs[static_cast<std::size_t>(idx)] = value;
}

void
Processor::maybeArrive(std::uint64_t now)
{
    if (_arrivePending && now >= _arriveCycle) {
        _arrivePending = false;
        _unit.arrive();
        if (_observer)
            _observer->onArrive(_id, now);
    }
}

TickResult
Processor::tick(std::uint64_t now)
{
    if (_halted)
        return TickResult::Halted;

    maybeArrive(now);

    switch (_state) {
      case CoreState::Running:
        if (_busyCycles > 0) {
            --_busyCycles;
            return TickResult::Progress;
        }
        maybeInterrupt(now);
        return issueBundle(now);

      case CoreState::DrainWait:
        // Waiting for the pipeline to drain so readiness fires; the
        // arrival then leads to the normal stall path. This is a
        // bounded wait on the core's own pipeline — report Progress,
        // not BarrierWait, or the machine would misdiagnose deadlock
        // while the drain clock is still running.
        if (!_arrivePending) {
            _state = CoreState::Running;
            return issue(now);
        }
        ++_barrierWaitCycles;
        return TickResult::Progress;

      case CoreState::HwStalled:
        if (_unit.mayCross()) {
            _state = CoreState::Running;
            return issue(now);
        }
        // A stalled processor can still service interrupts — useful
        // work overlapping the wait (section 9). After IRET the
        // crossing check naturally re-evaluates.
        if (maybeInterrupt(now)) {
            _state = CoreState::Running;
            return issue(now);
        }
        _unit.tickStalled();
        ++_barrierWaitCycles;
        return TickResult::BarrierWait;

      case CoreState::SwSaving:
        ++_barrierWaitCycles;
        ++_contextSwitchCycles;
        if (_busyCycles > 0) {
            --_busyCycles;
            return TickResult::Progress;
        }
        _state = CoreState::SwSuspended;
        [[fallthrough]];

      case CoreState::SwSuspended:
        if (_unit.mayCross()) {
            _state = CoreState::SwRestoring;
            _busyCycles = _stall.restoreCycles;
            ++_barrierWaitCycles;
            ++_contextSwitchCycles;
            return TickResult::Progress;
        }
        _unit.tickStalled();
        ++_barrierWaitCycles;
        return TickResult::BarrierWait;

      case CoreState::SwRestoring:
        if (_busyCycles > 0) {
            --_busyCycles;
            ++_barrierWaitCycles;
            ++_contextSwitchCycles;
            return TickResult::Progress;
        }
        _state = CoreState::Running;
        return issue(now);
    }
    panic("unreachable core state");
}

std::uint64_t
Processor::nextEventCycle(std::uint64_t now) const
{
    constexpr std::uint64_t never =
        std::numeric_limits<std::uint64_t>::max();
    // A halted core's next tick reports Halted, which drops it from
    // the machine's active pool and may complete the all-halted
    // termination check — an event, not a wait (skipping past it
    // would let a run that is about to finish sail on into future
    // fault events the legacy loop never reaches).
    if (_halted)
        return now + 1;

    std::uint64_t next = never;
    // A pending arrival fires in maybeArrive() at the top of any
    // tick, changing the unit state (and thus the network AND) even
    // while the core is mid-countdown.
    if (_arrivePending)
        next = std::min(next, std::max(_arriveCycle, now + 1));

    switch (_state) {
      case CoreState::Running:
      case CoreState::SwSaving:
      case CoreState::SwRestoring:
        // Countdown ticks are pure accounting; the tick after the
        // countdown issues (Running/SwRestoring) or falls through to
        // SwSuspended (SwSaving).
        next = std::min(next, now + _busyCycles + 1);
        break;

      case CoreState::DrainWait:
        if (!_arrivePending)
            next = now + 1;  // transitions back to Running and issues
        break;

      case CoreState::HwStalled:
        // Synchronization already delivered (the network's pending
        // delivery no longer covers this) or a forced interrupt:
        // the very next tick acts.
        if (_unit.mayCross() || _forceInterrupt)
            return now + 1;
        // A stalled core services periodic timer interrupts.
        if (_interruptPeriod != 0 && !_inIsr)
            next = std::min(next, std::max(_nextInterrupt, now + 1));
        break;

      case CoreState::SwSuspended:
        // No interrupt servicing while switched out; only delivery
        // (an external event) wakes the task.
        if (_unit.mayCross())
            return now + 1;
        break;
    }
    return next;
}

bool
Processor::isPrivateTick(std::uint64_t now) const
{
    // Halting (drops the core from the active pool), firing a pending
    // arrival, and every non-Running state (drain waits, stalls and
    // context switches all read or mutate the barrier unit) are
    // machine-visible.
    if (_halted || _arrivePending || _state != CoreState::Running)
        return false;

    // A busy countdown is pure local accounting.
    if (_busyCycles > 0)
        return true;

    // The tick would issue. Mirror maybeInterrupt(): a due interrupt
    // with a valid ISR entry vectors (a private PC/flag update) and
    // the issue happens at the ISR entry with the barrier structure
    // bypassed; an invalid entry drops the force bit and issues at
    // _pc as usual.
    std::size_t pc = _pc;
    bool in_isr = _inIsr;
    if (!_inIsr &&
        ((_interruptPeriod != 0 && now >= _nextInterrupt) ||
         _forceInterrupt)) {
        if (_isrEntry >= 0 &&
            static_cast<std::size_t>(_isrEntry) < _program.size()) {
            pc = static_cast<std::size_t>(_isrEntry);
            in_isr = true;
        }
    }

    // Running off the end halts — machine-visible.
    if (pc >= _program.size())
        return false;

    const Instruction &instr = _program.at(pc);
    switch (instr.op) {
      case Opcode::LD:
        // A load is private when it provably cannot observe another
        // core's store inside the window — its cycle lies strictly
        // below the write horizon the Machine published for this
        // window — and is timing-inert: an own-cache hit (no bus
        // transaction, no allocation, sharer bit already recorded).
        // Everything else goes to the coordinator as before.
        if (now >= _privReadHorizon ||
            !_mem.privateReadable(static_cast<std::size_t>(
                reg(instr.rs1) + instr.imm)))
            return false;
        break;
      case Opcode::ST:
      case Opcode::FAA:     // memory port (bus, caches, counters)
      case Opcode::SETTAG:
      case Opcode::SETMASK: // barrier-unit mutation
      case Opcode::HALT:
        return false;
      default:
        break;
    }
    // Later bundle slots only accept ALU/branch ops and never change
    // the effective region, so checking the leading slot suffices.

    if (in_isr)
        return true;  // ISRs bypass the barrier structure entirely
    if (!_unit.participating())
        return true;  // tag 0: no barrier interaction at all

    const bool inherited = !_callStack.empty() && _callStack.back();
    const bool effective_region =
        instr.inRegion || _markerRegion ||
        instr.op == Opcode::BRENTER || inherited;
    if (effective_region) {
        // Region instructions only touch the unit when they arm the
        // arrival, which needs the NonBarrier state; once armed (or
        // once the pulse is up) region execution is the fuzzy
        // barrier's free overlap and is private.
        return _unit.state() != barrier::BarrierState::NonBarrier;
    }
    // A non-region instruction with the unit mid-episode crosses,
    // stalls or drains — all unit interactions. Only the idle unit
    // lets it issue privately.
    return _unit.state() == barrier::BarrierState::NonBarrier;
}

std::uint64_t
Processor::runPrivate(std::uint64_t next, std::uint64_t stop)
{
    while (next < stop && isPrivateTick(next)) {
        // A private tick implies Running, so the decoded loop's entry
        // conditions are met whenever a decoded program is installed.
        // Multi-issue cores keep the generic path: isPrivateTick only
        // vouches for the leading bundle slot.
        if (_decoded != nullptr && _issueWidth == 1) {
            const std::uint64_t advanced = runDecoded(next, stop);
            FB_ASSERT(advanced > next,
                      "decoded loop diverged from isPrivateTick on cpu "
                          << _id << " at cycle " << next);
            next = advanced;
            continue;
        }
        if (_busyCycles > 0) {
            const std::uint64_t k = std::min<std::uint64_t>(
                _busyCycles, stop - next);
            advanceWait(k);
            next += k;
            continue;
        }
        tick(next);
        ++next;
    }
    return next;
}

/*
 * Threaded-code dispatch for the decoded private loop. With GNU
 * labels-as-values each pre-decoded opcode jumps straight to its
 * handler through a flat label table; elsewhere the same handler
 * bodies compile as a dense switch.
 */
#if defined(__GNUC__) || defined(__clang__)
#define FB_THREADED_DISPATCH 1
#define FB_OP(name) op_##name:
#define FB_DONE goto op_issued
#else
#define FB_THREADED_DISPATCH 0
#define FB_OP(name) case Opcode::name:
#define FB_DONE break
#endif

std::uint64_t
Processor::runDecoded(std::uint64_t next, std::uint64_t stop)
{
    const DecodedInsn *const code = _decoded->code.data();
    const std::size_t code_size = _decoded->code.size();

#if FB_THREADED_DISPATCH
    // Indexed by Opcode value; the excluded (non-private) opcodes
    // share a panicking handler — they can never reach the dispatch.
    const void *const labels[] = {
        &&op_ADD, &&op_SUB, &&op_MUL, &&op_DIV, &&op_AND, &&op_OR,
        &&op_XOR, &&op_SLT, &&op_SHL, &&op_SHR, &&op_ADDI, &&op_MULI,
        &&op_SLTI, &&op_LI, &&op_MOV, &&op_LD, &&op_ST, &&op_FAA,
        &&op_BEQ, &&op_BNE, &&op_BLT, &&op_BGE, &&op_JMP, &&op_CALL,
        &&op_RET, &&op_IRET, &&op_SETTAG, &&op_SETMASK, &&op_BRENTER,
        &&op_BREXIT, &&op_NOP, &&op_HALT};
#endif

    // Loop constants. During a private stretch the unit's tag and the
    // NonBarrier/armed distinction can only be changed by this core's
    // own excluded actions (SETTAG/SETMASK end the stretch) — a
    // concurrent delivery moves Ready to Synced without crossing the
    // NonBarrier boundary (see isPrivateTick) — so participation and
    // the NonBarrier test hold for the whole call.
    const bool participating = _unit.participating();
    const bool non_barrier =
        _unit.state() == barrier::BarrierState::NonBarrier;
    const std::uint64_t drain =
        static_cast<std::uint64_t>(_pipelineDepth) - 1;

    while (next < stop) {
        if (_busyCycles > 0) {
            // Busy countdowns are pure accounting (advanceWait's
            // Running branch), bulk-applied.
            const std::uint64_t k = std::min<std::uint64_t>(
                _busyCycles, stop - next);
            _busyCycles -= static_cast<std::uint32_t>(k);
            next += k;
            continue;
        }

        // Mirror maybeInterrupt() without committing: whether this
        // tick is private is decided first, mutations follow.
        std::size_t pc = _pc;
        bool in_isr = _inIsr;
        bool vector = false;
        bool drop_force = false;
        bool periodic = false;
        if (!_inIsr) {
            periodic = _interruptPeriod != 0 && next >= _nextInterrupt;
            if (periodic || _forceInterrupt) {
                if (_isrEntry >= 0 &&
                    static_cast<std::size_t>(_isrEntry) < code_size) {
                    pc = static_cast<std::size_t>(_isrEntry);
                    in_isr = true;
                    vector = true;
                } else {
                    drop_force = true;  // nowhere to vector: drop it
                }
            }
        }

        if (pc >= code_size)
            break;  // running off the end halts — machine-visible
        const DecodedInsn &di = code[pc];
        if (!di.privateOp &&
            !(di.op == Opcode::LD && next < _privReadHorizon &&
              _mem.privateReadable(static_cast<std::size_t>(
                  _regs[static_cast<std::size_t>(di.rs1)] + di.imm))))
            break;  // memory / barrier-control / HALT: coordinator's

        bool effective_region = false;
        if (!in_isr) {
            const bool inherited =
                !_callStack.empty() && _callStack.back();
            effective_region =
                di.staticRegion || _markerRegion || inherited;
            // Not private iff the issue would touch the unit: arming
            // (region while NonBarrier) or crossing/stalling
            // (non-region while armed).
            if (participating && effective_region == non_barrier)
                break;
        }

        // Committed: this tick is private. Apply the interrupt
        // decision (the deferred maybeInterrupt mutations), then
        // issue. The barrier block of issue() is a no-op on every
        // private tick, so execution reduces to the dispatch below.
        if (vector) {
            _savedPc = _pc;
            _pc = pc;
            _inIsr = true;
            if (periodic)
                _nextInterrupt += _interruptPeriod;
            _forceInterrupt = false;
            ++_interruptsTaken;
        } else if (drop_force) {
            _forceInterrupt = false;
        }
        _issueEffRegion = effective_region;

        std::uint32_t cost = di.cost;
        std::size_t next_pc = pc + 1;

// Direct register-file access: r0 reads as 0 because nothing ever
// writes _regs[0] (FB_WR guards rd != 0, mirroring executeAt).
#define FB_R(idx) _regs[static_cast<std::size_t>(idx)]
#define FB_WR(v)                                                       \
    do {                                                               \
        if (di.rd != 0)                                                \
            FB_R(di.rd) = (v);                                         \
    } while (0)

#if FB_THREADED_DISPATCH
        goto *labels[static_cast<std::size_t>(di.op)];
#else
        switch (di.op) {
#endif
        FB_OP(ADD) FB_WR(FB_R(di.rs1) + FB_R(di.rs2)); FB_DONE;
        FB_OP(SUB) FB_WR(FB_R(di.rs1) - FB_R(di.rs2)); FB_DONE;
        FB_OP(MUL) FB_WR(FB_R(di.rs1) * FB_R(di.rs2)); FB_DONE;
        FB_OP(DIV) {
            FB_ASSERT(FB_R(di.rs2) != 0, "division by zero at pc "
                                             << pc << " on cpu " << _id);
            FB_WR(FB_R(di.rs1) / FB_R(di.rs2));
            FB_DONE;
        }
        FB_OP(AND) FB_WR(FB_R(di.rs1) & FB_R(di.rs2)); FB_DONE;
        FB_OP(OR) FB_WR(FB_R(di.rs1) | FB_R(di.rs2)); FB_DONE;
        FB_OP(XOR) FB_WR(FB_R(di.rs1) ^ FB_R(di.rs2)); FB_DONE;
        FB_OP(SLT) FB_WR(FB_R(di.rs1) < FB_R(di.rs2) ? 1 : 0); FB_DONE;
        FB_OP(SHL) FB_WR(FB_R(di.rs1) << (FB_R(di.rs2) & 63)); FB_DONE;
        FB_OP(SHR) FB_WR(FB_R(di.rs1) >> (FB_R(di.rs2) & 63)); FB_DONE;
        FB_OP(ADDI) FB_WR(FB_R(di.rs1) + di.imm); FB_DONE;
        FB_OP(MULI) FB_WR(FB_R(di.rs1) * di.imm); FB_DONE;
        FB_OP(SLTI) FB_WR(FB_R(di.rs1) < di.imm ? 1 : 0); FB_DONE;
        FB_OP(LI) FB_WR(di.imm); FB_DONE;
        FB_OP(MOV) FB_WR(FB_R(di.rs1)); FB_DONE;
        FB_OP(BEQ) {
            if (FB_R(di.rs1) == FB_R(di.rs2))
                next_pc = static_cast<std::size_t>(di.imm);
            FB_DONE;
        }
        FB_OP(BNE) {
            if (FB_R(di.rs1) != FB_R(di.rs2))
                next_pc = static_cast<std::size_t>(di.imm);
            FB_DONE;
        }
        FB_OP(BLT) {
            if (FB_R(di.rs1) < FB_R(di.rs2))
                next_pc = static_cast<std::size_t>(di.imm);
            FB_DONE;
        }
        FB_OP(BGE) {
            if (FB_R(di.rs1) >= FB_R(di.rs2))
                next_pc = static_cast<std::size_t>(di.imm);
            FB_DONE;
        }
        FB_OP(JMP) next_pc = static_cast<std::size_t>(di.imm); FB_DONE;
        FB_OP(CALL) {
            FB_ASSERT(_callStack.size() < 4096,
                      "call stack overflow on cpu " << _id);
            FB_WR(static_cast<std::int64_t>(pc + 1));
            _callStack.push_back(_issueEffRegion);
            next_pc = static_cast<std::size_t>(di.imm);
            FB_DONE;
        }
        FB_OP(RET) {
            FB_ASSERT(!_callStack.empty(),
                      "RET without matching CALL on cpu " << _id);
            _callStack.pop_back();
            next_pc = static_cast<std::size_t>(FB_R(di.rs1));
            FB_DONE;
        }
        FB_OP(IRET) {
            FB_ASSERT(_inIsr, "IRET outside an interrupt service routine");
            _inIsr = false;
            next_pc = _savedPc;
            FB_DONE;
        }
        FB_OP(BRENTER) {
            FB_ASSERT(!_inIsr,
                      "region markers are not allowed inside ISRs");
            _markerRegion = true;
            FB_DONE;
        }
        FB_OP(BREXIT) {
            FB_ASSERT(!_inIsr,
                      "region markers are not allowed inside ISRs");
            _markerRegion = false;
            FB_DONE;
        }
        FB_OP(NOP) FB_DONE;
        FB_OP(LD) {
            // Reached only through the private-load pre-check above
            // (own-cache hit below the write horizon); the memory
            // port routes it through the deferred-statistics path.
            std::uint32_t mem_cycles = 0;
            const std::size_t a =
                static_cast<std::size_t>(FB_R(di.rs1) + di.imm);
            FB_WR(_mem.read(a, next, mem_cycles));
            cost += mem_cycles;
            FB_DONE;
        }
        FB_OP(ST)
        FB_OP(FAA)
        FB_OP(SETTAG)
        FB_OP(SETMASK)
        FB_OP(HALT)
        panic("non-private opcode reached the decoded dispatch");
#if !FB_THREADED_DISPATCH
        }
#endif

#if FB_THREADED_DISPATCH
    op_issued:
#endif
#undef FB_R
#undef FB_WR

        if (_jitterMean > 0.0)
            cost += static_cast<std::uint32_t>(
                _jitter.nextJitter(_jitterMean));
        _pc = next_pc;
        _lastIssueCost = cost;
        ++_instructions;
        _busyCycles = cost > 0 ? cost - 1 : 0;
        if (!effective_region) {
            _lastNonRegionComplete = next + cost - 1 + drain;
        }
        ++next;
    }
    return next;
}

#undef FB_OP
#undef FB_DONE
#undef FB_THREADED_DISPATCH

void
Processor::advanceWait(std::uint64_t cycles)
{
    if (_halted || cycles == 0)
        return;
    switch (_state) {
      case CoreState::Running:
        FB_ASSERT(cycles <= _busyCycles,
                  "fast-forward skipped past an issue on cpu " << _id);
        _busyCycles -= static_cast<std::uint32_t>(cycles);
        break;

      case CoreState::DrainWait:
        _barrierWaitCycles += cycles;
        break;

      case CoreState::HwStalled:
        _unit.tickStalledFor(cycles);
        _barrierWaitCycles += cycles;
        break;

      case CoreState::SwSaving:
      case CoreState::SwRestoring:
        FB_ASSERT(cycles <= _busyCycles,
                  "fast-forward skipped past a context switch on cpu "
                      << _id);
        _busyCycles -= static_cast<std::uint32_t>(cycles);
        _barrierWaitCycles += cycles;
        _contextSwitchCycles += cycles;
        break;

      case CoreState::SwSuspended:
        _unit.tickStalledFor(cycles);
        _barrierWaitCycles += cycles;
        break;
    }
}

TickResult
Processor::beginStall(std::uint64_t now)
{
    _unit.noteStalled();
    if (_stall.kind == StallKind::Hardware) {
        _state = CoreState::HwStalled;
        _unit.tickStalled();
        ++_barrierWaitCycles;
        return TickResult::BarrierWait;
    }
    // Software: the task's context is saved so the OS can run
    // something else; after synchronization it must be restored.
    ++_contextSwitches;
    _state = CoreState::SwSaving;
    _busyCycles = _stall.saveCycles;
    ++_barrierWaitCycles;
    ++_contextSwitchCycles;
    (void)now;
    return TickResult::Progress;
}

TickResult
Processor::issueBundle(std::uint64_t now)
{
    if (_issueWidth == 1)
        return issue(now);

    // VLIW-style multi-issue: grab up to issueWidth consecutive
    // instructions with no intra-bundle register dependences, all in
    // the same region, at most one control transfer (which closes the
    // bundle). The bundle occupies the core for the longest slot.
    std::uint32_t bundle_cost = 0;
    bool wrote[isa::numRegisters] = {};
    TickResult result = TickResult::Progress;

    for (int slot = 0; slot < _issueWidth; ++slot) {
        if (_halted || _pc >= _program.size()) {
            if (slot == 0)
                return issue(now);  // reports Halted properly
            break;
        }
        const Instruction &next = _program.at(_pc);
        if (slot > 0) {
            if (!bundleable(next))
                break;
            const Instruction &first_like = next;
            // A bundle never spans a region boundary.
            if (first_like.inRegion != _issueEffRegion)
                break;
            // Register hazards against earlier slots.
            bool hazard = false;
            auto touches = [&](int r) {
                return r != 0 && wrote[static_cast<std::size_t>(r)];
            };
            switch (isa::operandKind(next.op)) {
              case isa::OperandKind::RRR:
                hazard = touches(next.rs1) || touches(next.rs2) ||
                         touches(next.rd);
                break;
              case isa::OperandKind::RRI:
              case isa::OperandKind::RR:
                hazard = touches(next.rs1) || touches(next.rd);
                break;
              case isa::OperandKind::RI:
                hazard = touches(next.rd);
                break;
              case isa::OperandKind::BranchRR:
                hazard = touches(next.rs1) || touches(next.rs2);
                break;
              case isa::OperandKind::BranchNone:
                hazard = false;
                break;
              default:
                hazard = true;  // not bundleable anyway
                break;
            }
            if (hazard)
                break;
        }

        std::size_t expected_next = _pc + 1;
        bool was_branch = isa::isBranch(next.op);
        int dest = next.rd;

        result = issue(now);
        if (result != TickResult::Progress)
            return result;  // stall/halt; earlier slots already ran
        bundle_cost = std::max(bundle_cost, _lastIssueCost);
        if (dest != 0 && !was_branch)
            wrote[static_cast<std::size_t>(dest)] = true;
        // A taken control transfer closes the bundle.
        if (_pc != expected_next)
            break;
        // Marker/linkage/memory effects never occur past slot 0 by
        // construction; slot 0 with such an op still closes here.
        if (slot == 0 && !bundleable(next))
            break;
    }

    _busyCycles = bundle_cost > 0 ? bundle_cost - 1 : 0;
    return result;
}

TickResult
Processor::issue(std::uint64_t now)
{
    if (_pc >= _program.size()) {
        _halted = true;
        return TickResult::Halted;
    }

    const Instruction &instr = _program.at(_pc);
    const bool inherited = !_callStack.empty() && _callStack.back();
    const bool effective_region =
        !_inIsr && (instr.inRegion || _markerRegion ||
                    instr.op == Opcode::BRENTER || inherited);
    _issueEffRegion = effective_region;

    if (_inIsr) {
        // Service routines bypass the barrier structure entirely.
    } else if (effective_region) {
        // Entering (or continuing in) a barrier region.
        if (_unit.participating() &&
            _unit.state() == barrier::BarrierState::NonBarrier &&
            !_arrivePending) {
            // Readiness fires when the preceding non-barrier region
            // has drained from the pipeline (section 2: entering the
            // region is not the same as exiting the preceding one).
            _arrivePending = true;
            _arriveCycle = std::max(now, _lastNonRegionComplete);
            maybeArrive(now);
        }
    } else {
        // About to execute a non-region instruction. If an episode is
        // armed (or arming), the barrier must have synchronized first.
        // (Never reached while in an ISR.)
        if (_arrivePending) {
            _state = CoreState::DrainWait;
            ++_barrierWaitCycles;
            return TickResult::Progress;
        }
        if (_unit.participating()) {
            auto st = _unit.state();
            if (st == barrier::BarrierState::Ready ||
                st == barrier::BarrierState::Stalled) {
                return beginStall(now);
            }
            if (st == barrier::BarrierState::Synced) {
                _unit.cross();
                if (_observer)
                    _observer->onCross(_id, now);
            }
        }
    }

    std::uint32_t cost = executeAt(now);
    _lastIssueCost = cost;
    ++_instructions;
    _busyCycles = cost > 0 ? cost - 1 : 0;

    // Track when this instruction leaves the pipeline, for readiness:
    // the last execute cycle is now + cost - 1, and the instruction
    // drains pipelineDepth - 1 cycles later.
    if (!effective_region) {
        _lastNonRegionComplete =
            now + cost - 1 + static_cast<std::uint64_t>(_pipelineDepth) - 1;
    }
    return TickResult::Progress;
}

std::uint32_t
Processor::executeAt(std::uint64_t now)
{
    const Instruction &instr = _program.at(_pc);
    std::uint32_t cost = static_cast<std::uint32_t>(baseLatency(instr.op));
    std::size_t next_pc = _pc + 1;

    auto rs1 = [&] { return reg(instr.rs1); };
    auto rs2 = [&] { return reg(instr.rs2); };
    auto write_rd = [&](std::int64_t v) {
        if (instr.rd != 0)
            _regs[static_cast<std::size_t>(instr.rd)] = v;
    };

    switch (instr.op) {
      case Opcode::ADD: write_rd(rs1() + rs2()); break;
      case Opcode::SUB: write_rd(rs1() - rs2()); break;
      case Opcode::MUL: write_rd(rs1() * rs2()); break;
      case Opcode::DIV: {
        FB_ASSERT(rs2() != 0, "division by zero at pc " << _pc
                                                        << " on cpu " << _id);
        write_rd(rs1() / rs2());
        break;
      }
      case Opcode::AND: write_rd(rs1() & rs2()); break;
      case Opcode::OR: write_rd(rs1() | rs2()); break;
      case Opcode::XOR: write_rd(rs1() ^ rs2()); break;
      case Opcode::SLT: write_rd(rs1() < rs2() ? 1 : 0); break;
      case Opcode::SHL: write_rd(rs1() << (rs2() & 63)); break;
      case Opcode::SHR: write_rd(rs1() >> (rs2() & 63)); break;
      case Opcode::ADDI: write_rd(rs1() + instr.imm); break;
      case Opcode::MULI: write_rd(rs1() * instr.imm); break;
      case Opcode::SLTI: write_rd(rs1() < instr.imm ? 1 : 0); break;
      case Opcode::LI: write_rd(instr.imm); break;
      case Opcode::MOV: write_rd(rs1()); break;

      case Opcode::LD: {
        std::size_t addr = static_cast<std::size_t>(rs1() + instr.imm);
        std::uint32_t mem_cycles = 0;
        write_rd(_mem.read(addr, now, mem_cycles));
        cost += mem_cycles;
        break;
      }
      case Opcode::ST: {
        std::size_t addr = static_cast<std::size_t>(rs1() + instr.imm);
        std::uint32_t mem_cycles = 0;
        _mem.write(addr, rs2(), now, mem_cycles);
        cost += mem_cycles;
        break;
      }
      case Opcode::FAA: {
        // Atomic within a cycle: processors are ticked sequentially,
        // so the read-modify-write cannot interleave.
        std::size_t addr = static_cast<std::size_t>(rs1() + instr.imm);
        std::uint32_t read_cycles = 0;
        std::int64_t old = _mem.read(addr, now, read_cycles);
        std::uint32_t write_cycles = 0;
        _mem.write(addr, old + rs2(), now, write_cycles);
        write_rd(old);
        cost += read_cycles;
        break;
      }

      case Opcode::BEQ:
        if (rs1() == rs2())
            next_pc = static_cast<std::size_t>(instr.imm);
        break;
      case Opcode::BNE:
        if (rs1() != rs2())
            next_pc = static_cast<std::size_t>(instr.imm);
        break;
      case Opcode::BLT:
        if (rs1() < rs2())
            next_pc = static_cast<std::size_t>(instr.imm);
        break;
      case Opcode::BGE:
        if (rs1() >= rs2())
            next_pc = static_cast<std::size_t>(instr.imm);
        break;
      case Opcode::JMP:
        next_pc = static_cast<std::size_t>(instr.imm);
        break;
      case Opcode::CALL:
        FB_ASSERT(_callStack.size() < 4096,
                  "call stack overflow on cpu " << _id);
        write_rd(static_cast<std::int64_t>(_pc + 1));
        _callStack.push_back(_issueEffRegion);
        next_pc = static_cast<std::size_t>(instr.imm);
        break;
      case Opcode::RET:
        FB_ASSERT(!_callStack.empty(),
                  "RET without matching CALL on cpu " << _id);
        _callStack.pop_back();
        next_pc = static_cast<std::size_t>(rs1());
        break;
      case Opcode::IRET:
        FB_ASSERT(_inIsr, "IRET outside an interrupt service routine");
        _inIsr = false;
        next_pc = _savedPc;
        break;

      case Opcode::SETTAG:
        _unit.setTag(static_cast<std::uint32_t>(instr.imm));
        break;
      case Opcode::SETMASK:
        // imm -1 is the wide form: every processor in the machine
        // (the 64-bit literal mask cannot name processors >= 63).
        if (instr.imm == -1)
            _unit.setMaskAll();
        else
            _unit.setMask(static_cast<std::uint64_t>(instr.imm));
        break;
      case Opcode::BRENTER:
        FB_ASSERT(!_inIsr, "region markers are not allowed inside ISRs");
        _markerRegion = true;
        break;
      case Opcode::BREXIT:
        FB_ASSERT(!_inIsr, "region markers are not allowed inside ISRs");
        _markerRegion = false;
        break;

      case Opcode::NOP:
        break;
      case Opcode::HALT:
        _halted = true;
        break;
    }

    if (_jitterMean > 0.0)
        cost += static_cast<std::uint32_t>(_jitter.nextJitter(_jitterMean));

    _pc = next_pc;
    return cost;
}

void
Processor::encodeState(snapshot::Encoder &e) const
{
    for (std::int64_t r : _regs)
        e.i64(r);
    e.u64(_pc);
    e.b(_halted);
    e.u8(static_cast<std::uint8_t>(_state));
    e.u32(_busyCycles);
    e.b(_markerRegion);
    e.boolVec(_callStack);
    e.b(_issueEffRegion);
    e.u32(_lastIssueCost);
    e.b(_inIsr);
    e.u64(_savedPc);
    e.u64(_nextInterrupt);
    e.b(_forceInterrupt);
    e.b(_arrivePending);
    e.u64(_arriveCycle);
    e.u64(_lastNonRegionComplete);
    e.u64(_instructions);
    e.u64(_barrierWaitCycles);
    e.u64(_contextSwitchCycles);
    e.u64(_contextSwitches);
    e.u64(_interruptsTaken);
    for (std::uint64_t s : _jitter.state())
        e.u64(s);
}

bool
Processor::decodeState(snapshot::Decoder &d)
{
    for (std::int64_t &r : _regs)
        r = d.i64();
    _pc = static_cast<std::size_t>(d.u64());
    _halted = d.b();
    _state = static_cast<CoreState>(d.u8());
    _busyCycles = d.u32();
    _markerRegion = d.b();
    d.boolVec(_callStack);
    _issueEffRegion = d.b();
    _lastIssueCost = d.u32();
    _inIsr = d.b();
    _savedPc = static_cast<std::size_t>(d.u64());
    _nextInterrupt = d.u64();
    _forceInterrupt = d.b();
    _arrivePending = d.b();
    _arriveCycle = d.u64();
    _lastNonRegionComplete = d.u64();
    _instructions = d.u64();
    _barrierWaitCycles = d.u64();
    _contextSwitchCycles = d.u64();
    _contextSwitches = d.u64();
    _interruptsTaken = d.u64();
    std::array<std::uint64_t, 4> jitter_state{};
    for (std::uint64_t &s : jitter_state)
        s = d.u64();
    _jitter.setState(jitter_state);
    return d.ok() && _pc <= _program.size();
}

} // namespace fb::sim
