#include "sim/machine.hh"

#include <algorithm>
#include <bit>
#include <limits>
#include <sstream>

#include "snapshot/codec.hh"
#include "snapshot/format.hh"
#include "support/logging.hh"

namespace fb::sim
{

std::uint64_t
RunResult::totalBarrierWait() const
{
    std::uint64_t total = 0;
    for (const auto &p : perProcessor)
        total += p.barrierWaitCycles;
    return total;
}

std::uint64_t
RunResult::maxBarrierWait() const
{
    std::uint64_t best = 0;
    for (const auto &p : perProcessor)
        best = std::max(best, p.barrierWaitCycles);
    return best;
}

/**
 * Per-processor memory port: timing comes from the private cache plus
 * the shared bus; data always comes from shared memory. Stores
 * invalidate the line in the other caches that may hold it
 * (write-through coherence): a per-line sharer mask — a conservative
 * superset of the caches holding the line, reset to the writer on
 * every store — replaces the old O(P) broadcast. Invalidating a
 * cache that merely *might* hold the line is a tag-mismatch no-op,
 * so the filter never changes behaviour, only the work done.
 */
class Machine::Port : public MemoryPort
{
  public:
    Port(Machine &machine, int cpu) : _machine(machine), _cpu(cpu) {}

    std::int64_t
    read(std::size_t addr, std::uint64_t now, std::uint32_t &cycles)
        override
    {
        if (_machine._windowActive) {
            // Private fast path inside a shard window: admitted only
            // after privateReadable(), and no store executes during a
            // window, so the hit is guaranteed and the peek race-free.
            // The shared-memory statistics are replayed in processor
            // order by flushDeferredReads() when the window closes.
            auto result =
                _machine._caches[static_cast<std::size_t>(_cpu)]
                    ->access(addr);
            FB_ASSERT(result.hit, "private-path load missed the cache "
                                  "on cpu "
                                      << _cpu);
            cycles = result.cycles;
            _machine._deferredReads[static_cast<std::size_t>(_cpu)]
                .push_back(addr);
            return _machine._memory->peek(addr);
        }
        cycles = latency(addr, now);
        return _machine._memory->read(addr);
    }

    bool
    privateReadable(std::size_t addr) const override
    {
        return _machine._config.privateReads &&
               addr < _machine._memory->size() &&
               _machine._caches[static_cast<std::size_t>(_cpu)]
                   ->wouldHit(addr);
    }

    void
    write(std::size_t addr, std::int64_t value, std::uint64_t now,
          std::uint32_t &cycles) override
    {
        cycles = latency(addr, now);
        _machine._memory->write(addr, value);
        std::size_t line = lineOf(addr);
        if (line >= _machine._lineSharers.size())
            return;  // cache model disabled
        const int n = _machine.numProcessors();
        std::uint64_t &sharers = _machine._lineSharers[line];
        const std::uint64_t self = 1ull << (_cpu & 63);
        if (n <= 64) {
            std::uint64_t others = sharers & ~self;
            _machine._invalidationsAvoided +=
                static_cast<std::uint64_t>(n - 1) -
                static_cast<std::uint64_t>(std::popcount(others));
            while (others != 0) {
                int p = std::countr_zero(others);
                others &= others - 1;
                _machine._caches[static_cast<std::size_t>(p)]
                    ->invalidate(addr);
                ++_machine._invalidationsSent;
            }
        } else {
            // Beyond 64 processors the sharer word is a bucketed
            // mask: bit b stands for every processor congruent to b
            // mod 64. Invalidating an aliased non-holder is a
            // tag-mismatch no-op, so the mask stays a conservative
            // superset exactly like the narrow form.
            std::uint64_t buckets = sharers;
            std::uint64_t sent = 0;
            while (buckets != 0) {
                const int bit = std::countr_zero(buckets);
                buckets &= buckets - 1;
                for (int p = bit; p < n; p += 64) {
                    if (p == _cpu)
                        continue;
                    _machine._caches[static_cast<std::size_t>(p)]
                        ->invalidate(addr);
                    ++sent;
                }
            }
            _machine._invalidationsSent += sent;
            _machine._invalidationsAvoided +=
                static_cast<std::uint64_t>(n - 1) - sent;
        }
        sharers = self;
        _machine.markSharerEpoch(line);
    }

  private:
    std::size_t
    lineOf(std::size_t addr) const
    {
        return addr / std::max<std::size_t>(
                          1, _machine._config.cache.lineWords);
    }

    std::uint32_t
    latency(std::size_t addr, std::uint64_t now)
    {
        auto result =
            _machine._caches[static_cast<std::size_t>(_cpu)]->access(addr);
        // access() write-allocates, so after any access this cache
        // may hold the line: record it in the sharer mask (bucketed
        // by cpu mod 64 when the machine is wider than one word).
        std::size_t line = lineOf(addr);
        if (line < _machine._lineSharers.size()) {
            _machine._lineSharers[line] |= 1ull << (_cpu & 63);
            _machine.markSharerEpoch(line);
        }
        if (result.hit)
            return result.cycles;
        std::uint64_t queue = _machine._bus->request(now, addr);
        return result.cycles + static_cast<std::uint32_t>(queue);
    }

    Machine &_machine;
    int _cpu;
};

Machine::Machine(const MachineConfig &config) : _config(config)
{
    FB_ASSERT(config.numProcessors > 0 &&
                  static_cast<std::size_t>(config.numProcessors) <=
                      HiBitset::maxCapacity,
              "processor count must be in [1, "
                  << HiBitset::maxCapacity << "]");
    _memory = std::make_unique<SharedMemory>(config.memWords);
    _bus = std::make_unique<SharedBus>(config.busServiceCycles,
                                       config.busKind);
    _network = std::make_unique<barrier::BarrierNetwork>(
        config.numProcessors, config.syncLatency, config.topology);

    _programs.resize(static_cast<std::size_t>(config.numProcessors));
    for (auto &prog : _programs)
        prog.finalize();
    _decodedPrograms.resize(
        static_cast<std::size_t>(config.numProcessors));

    RandomSource master(config.seed);
    for (int p = 0; p < config.numProcessors; ++p) {
        _caches.push_back(std::make_unique<DataCache>(config.cache));
        _ports.push_back(std::make_unique<Port>(*this, p));
        _processors.push_back(std::make_unique<Processor>(
            p, _programs[static_cast<std::size_t>(p)], _network->unit(p),
            *_ports.back(), config.pipelineDepth, config.stall,
            master.split(), config.jitterMean, config.interruptPeriod,
            config.isrEntry, config.issueWidth));
        if (config.recordSyncEvents)
            _processors.back()->setObserver(this);
    }
    if (config.traceBarrierStates) {
        _trace = std::make_unique<BarrierTrace>(config.numProcessors);
    }
    _lastArrival.assign(static_cast<std::size_t>(config.numProcessors), 0);
    _openSyncRecord.assign(static_cast<std::size_t>(config.numProcessors),
                           std::numeric_limits<std::size_t>::max());
    _fenced.assign(static_cast<std::size_t>(config.numProcessors), false);

    if (config.cache.enabled) {
        std::size_t line_words =
            std::max<std::size_t>(1, config.cache.lineWords);
        _lineSharers.assign(config.memWords / line_words + 1, 0);
    }
    _active.reserve(static_cast<std::size_t>(config.numProcessors));
    _groupScratch.reserve(static_cast<std::size_t>(config.numProcessors));
    _traceStates.reserve(static_cast<std::size_t>(config.numProcessors));
    _traceHalted.reserve(static_cast<std::size_t>(config.numProcessors));
    _wdHalted.resize(static_cast<std::size_t>(config.numProcessors));
    _deferredReads.resize(static_cast<std::size_t>(config.numProcessors));

    if (config.faultPlan != nullptr && !config.faultPlan->empty()) {
        _injector = std::make_unique<fault::FaultInjector>(
            *config.faultPlan, config.numProcessors);
        _network->setPulseFilter(_injector.get());
    }
    if (config.watchdog.enabled) {
        _watchdog = std::make_unique<fault::BarrierWatchdog>(
            config.watchdog, config.numProcessors);
    }
}

Machine::~Machine() = default;

// Debug-only reset verification: after every Machine::reset, snapshot
// the recycled machine and a freshly constructed twin and require the
// byte streams to be identical. Always on in Debug builds; sanitizer
// builds (which may compile with NDEBUG, e.g. TSan's RelWithDebInfo)
// opt in explicitly via FB_CHECK_MACHINE_RESET from CMake.
#if !defined(NDEBUG) || defined(FB_CHECK_MACHINE_RESET)
#define FB_RESET_CHECKS 1
#else
#define FB_RESET_CHECKS 0
#endif

std::uint64_t
Machine::structuralKey(const MachineConfig &config)
{
    snapshot::Fnv1a h;
    h.mix(static_cast<std::uint64_t>(config.numProcessors));
    h.mix(config.memWords);
    h.mix(config.cache.enabled ? 1 : 0);
    h.mix(config.cache.numLines);
    h.mix(config.cache.lineWords);
    return h.value();
}

void
Machine::reset(const MachineConfig &config)
{
    FB_ASSERT(config.numProcessors > 0 &&
                  static_cast<std::size_t>(config.numProcessors) <=
                      HiBitset::maxCapacity,
              "processor count must be in [1, "
                  << HiBitset::maxCapacity << "]");
    FB_ASSERT(structuralKey(config) == structuralKey(_config),
              "Machine::reset across structural shapes (use a new "
              "Machine instead)");

    // Zero the sharer masks before the memory forgets which pages the
    // previous run touched: every access that can set a sharer bit
    // also lands in the page's access stats, so the touched-page list
    // bounds the nonzero lines (restores included — a snapshot's
    // sharers are covered by its decoded stats pages).
    if (!_lineSharers.empty()) {
        if (_sharersUnbounded) {
            std::fill(_lineSharers.begin(), _lineSharers.end(), 0);
        } else {
            const std::size_t line_words =
                std::max<std::size_t>(1, _config.cache.lineWords);
            for (std::size_t page : _memory->touchedPages()) {
                const std::size_t first =
                    page * SharedMemory::pageWords / line_words;
                const std::size_t last = std::min(
                    _lineSharers.size(),
                    ((page + 1) * SharedMemory::pageWords - 1) /
                            line_words +
                        1);
                if (first < last)
                    std::fill(_lineSharers.begin() +
                                  static_cast<std::ptrdiff_t>(first),
                              _lineSharers.begin() +
                                  static_cast<std::ptrdiff_t>(last),
                              0);
            }
        }
    }
    _sharersUnbounded = false;

    _config = config;
    _memory->resetStats();
    _memory->resetContents();
    _bus->reset(config.busServiceCycles, config.busKind);
    _network->reset(config.syncLatency, config.topology);

    for (auto &prog : _programs) {
        prog = isa::Program();
        prog.finalize();
    }
    for (int p = 0; p < config.numProcessors; ++p) {
        _decodedPrograms[static_cast<std::size_t>(p)] = nullptr;
        _processors[static_cast<std::size_t>(p)]->setDecoded(nullptr);
    }

    // Same seeding protocol as the constructor: one master stream,
    // split per processor in ascending order, so a recycled machine's
    // jitter sequences are bit-identical to a fresh one's.
    RandomSource master(config.seed);
    for (int p = 0; p < config.numProcessors; ++p) {
        const auto idx = static_cast<std::size_t>(p);
        _caches[idx]->reset(config.cache);
        _processors[idx]->reset(config.pipelineDepth, config.stall,
                                master.split(), config.jitterMean,
                                config.interruptPeriod, config.isrEntry,
                                config.issueWidth);
        if (config.recordSyncEvents)
            _processors[idx]->setObserver(this);
    }
    _trace = config.traceBarrierStates
                 ? std::make_unique<BarrierTrace>(config.numProcessors)
                 : nullptr;

    _now = 0;
    std::fill(_lastArrival.begin(), _lastArrival.end(), 0);
    std::fill(_openSyncRecord.begin(), _openSyncRecord.end(),
              std::numeric_limits<std::size_t>::max());
    std::fill(_fenced.begin(), _fenced.end(), false);
    _recoveries.clear();
    _deadDeclared.clear();
    _membershipViolation.clear();
    _checkpointSink = nullptr;
    _stagedSink = nullptr;
    endDeltaEpoch();
    _deltaEpochOpen = false;
    _deltasDisabled = false;
    _forceFullNext = false;
    _checkpointSeq = 0;
    _chainBaseGen = 0;
    _lastCheckpointGen = 0;
    _restoredChainGen = 0;
    _checkpointsFull = 0;
    _checkpointsDelta = 0;
    _checkpointDegradations = 0;
    _checkpointDegradation.clear();
    _syncRecords.clear();
    _syncRecordsDropped = 0;
    _invalidationsSent = 0;
    _invalidationsAvoided = 0;
    _windowActive = false;
    for (auto &dr : _deferredReads)
        dr.clear();

    _injector.reset();
    if (config.faultPlan != nullptr && !config.faultPlan->empty()) {
        _injector = std::make_unique<fault::FaultInjector>(
            *config.faultPlan, config.numProcessors);
        _network->setPulseFilter(_injector.get());
    }
    _watchdog.reset();
    if (config.watchdog.enabled) {
        _watchdog = std::make_unique<fault::BarrierWatchdog>(
            config.watchdog, config.numProcessors);
    }

#if FB_RESET_CHECKS
    if (!_trace) {
        // The recycled machine must be observably indistinguishable
        // from a fresh one — the whole machine-reuse invariant in one
        // check. Snapshots encode only touched state, so a correctly
        // reset machine produces a byte-identical stream.
        Machine fresh(config);
        FB_ASSERT(saveState(0) == fresh.saveState(0),
                  "Machine::reset left reused state behind (snapshot "
                  "differs from a freshly constructed machine)");
    }
#endif
}

void
Machine::loadProgram(int p, isa::Program program,
                     std::shared_ptr<const DecodedProgram> decoded)
{
    FB_ASSERT(p >= 0 && p < numProcessors(), "bad processor index");
    FB_ASSERT(program.finalized(), "program must be finalized");
    FB_ASSERT(_now == 0, "cannot load programs after run()");
    const auto sp = static_cast<std::size_t>(p);
    if (!_config.predecode) {
        decoded = nullptr;  // escape hatch: legacy per-cycle loop only
    } else if (decoded != nullptr) {
        // A shared decode (ProgramCache) must be the twin of this
        // exact program, or the threaded loop would execute different
        // code than the interpreter.
        FB_ASSERT(decoded->sourceHash == programHash(program),
                  "decoded block does not match the loaded program on "
                  "cpu " << p);
    } else if (program.size() > 0) {
        decoded = decodeProgram(program);
    }
    _programs[sp] = std::move(program);
    _decodedPrograms[sp] = std::move(decoded);
    _processors[sp]->setDecoded(_decodedPrograms[sp].get());
}

void
Machine::loadAllPrograms(const isa::Program &program)
{
    // Decode once, share the block across every processor.
    std::shared_ptr<const DecodedProgram> decoded;
    if (_config.predecode && program.size() > 0)
        decoded = decodeProgram(program);
    for (int p = 0; p < numProcessors(); ++p)
        loadProgram(p, program, decoded);
}

std::shared_ptr<const DecodedProgram>
Machine::decodedProgram(int p) const
{
    FB_ASSERT(p >= 0 && p < numProcessors(), "bad processor index");
    return _decodedPrograms[static_cast<std::size_t>(p)];
}

Processor &
Machine::processor(int p)
{
    FB_ASSERT(p >= 0 && p < numProcessors(), "bad processor index");
    return *_processors[static_cast<std::size_t>(p)];
}

void
Machine::onArrive(int p, std::uint64_t cycle)
{
    _lastArrival[static_cast<std::size_t>(p)] = cycle;
}

void
Machine::onCross(int p, std::uint64_t cycle)
{
    std::size_t rec = _openSyncRecord[static_cast<std::size_t>(p)];
    if (rec == std::numeric_limits<std::size_t>::max())
        return;
    SyncRecord &record = _syncRecords[rec];
    for (std::size_t i = 0; i < record.members.size(); ++i) {
        if (record.members[i] == p) {
            record.crossings[i] = cycle;
            break;
        }
    }
    _openSyncRecord[static_cast<std::size_t>(p)] =
        std::numeric_limits<std::size_t>::max();
}

RunResult
Machine::run(ShardWindowDriver *driver)
{
    RunResult result;
    const int n = numProcessors();
    result.perProcessor.reserve(static_cast<std::size_t>(n));
    constexpr std::uint64_t never =
        std::numeric_limits<std::uint64_t>::max();

    // Per-cycle barrier-state tracing needs the loop body to run on
    // every cycle, so it disables fast-forward.
    const bool fast_forward = _config.fastForward && !_trace;

    // Sharded windows (section 17) generalize fast-forward — both
    // reason about which cycles the loop body may not observe — so a
    // driver is honoured only when fast-forward is live and a skew
    // quantum is configured.
    const bool sharded =
        driver != nullptr && fast_forward && _config.shardQuantum != 0;

    // Macro-stepping (section 19): with the pre-decoded backend the
    // sequential core reuses the exact same window machinery, inline
    // on this thread — advanceShardRange over all processors instead
    // of a driver rendezvous — so straight-line private stretches run
    // through the threaded-code loop in one call. Identical window
    // bounds, identical deadlock guard, identical results at any
    // quantum (the sharded suite pins quantum-invariance), so the
    // fixed quantum below is purely a batching knob.
    constexpr std::uint64_t macroQuantum = 4096;
    const bool macro = !sharded && driver == nullptr && fast_forward &&
                       _config.predecode;
    const bool windowed = sharded || macro;
    const std::uint64_t quantum =
        sharded ? _config.shardQuantum : macroQuantum;
    if (windowed)
        _procNext.assign(static_cast<std::size_t>(n), 0);

    _active.clear();
    for (int p = 0; p < n; ++p)
        _active.push_back(p);

    // Seed the watchdog's halted-or-fenced view once; from here it is
    // maintained on the edges that change it (halt, kill, recovery
    // fence) so the per-cycle watchdog block never scans all n cores.
    for (int p = 0; p < n; ++p) {
        _wdHalted[static_cast<std::size_t>(p)] =
            _fenced[static_cast<std::size_t>(p)] ||
            _processors[static_cast<std::size_t>(p)]->halted();
    }

    for (;;) {
        if (_injector) {
            _injector->beginCycle(_now, *_network);
            for (int d : _injector->killsDue(_now)) {
                if (!_fenced[static_cast<std::size_t>(d)]) {
                    std::ostringstream oss;
                    oss << "fault: killing cpu" << d << " at cycle "
                        << _now;
                    warn(oss.str());
                    _processors[static_cast<std::size_t>(d)]->kill();
                    _wdHalted[static_cast<std::size_t>(d)] = true;
                }
            }
            for (int p : _active) {
                auto &proc = *_processors[static_cast<std::size_t>(p)];
                if (!_fenced[static_cast<std::size_t>(p)] &&
                    !proc.halted() && _injector->stormActive(p, _now)) {
                    proc.forceInterrupt();
                    ++_injector->stats().forcedInterrupts;
                }
            }
        }

        bool all_halted = true;
        bool any_progress = false;

        // Tick the still-active processors in ascending order (tick
        // order is architectural: FAA atomicity and bus request
        // ordering depend on it), compacting out the ones that leave
        // the pool. A fenced processor was declared dead by the
        // watchdog: it no longer ticks and counts as halted. A frozen
        // processor skips its tick; unless frozen forever, it will
        // resume, so the run must not terminate on it.
        std::size_t out = 0;
        for (std::size_t idx = 0; idx < _active.size(); ++idx) {
            int p = _active[idx];
            if (_fenced[static_cast<std::size_t>(p)])
                continue;  // drop from the active pool
            if (_injector && _injector->frozen(p, _now)) {
                if (!_injector->frozenForever(p, _now))
                    all_halted = false;
                _active[out++] = p;
                continue;
            }
            if (windowed &&
                _procNext[static_cast<std::size_t>(p)] > _now) {
                // Ran ahead through private ticks inside an earlier
                // window: each of those ticks reported Progress and
                // could not halt, so the sequential loop would have
                // seen a live, progressing core at this cycle.
                _active[out++] = p;
                all_halted = false;
                any_progress = true;
                continue;
            }
            TickResult tr =
                _processors[static_cast<std::size_t>(p)]->tick(_now);
            if (windowed)
                _procNext[static_cast<std::size_t>(p)] = _now + 1;
            if (tr == TickResult::Halted) {
                _wdHalted[static_cast<std::size_t>(p)] = true;
                continue;  // halted for good: drop from the pool
            }
            _active[out++] = p;
            all_halted = false;
            if (tr == TickResult::Progress)
                any_progress = true;
        }
        _active.resize(out);

        int delivered = _network->evaluate(_now);
        if (delivered > 0 || _network->deliveryPending())
            any_progress = true;

        if (_config.recordSyncEvents && delivered > 0) {
            // Group the newly synchronized processors by tag; each
            // group is one completed barrier episode. delivered() is
            // exactly the set whose episode counters advanced, in
            // ascending processor order; a stable sort by tag yields
            // the ascending-tag, ascending-member order the old
            // std::map grouping produced, without the per-delivery
            // allocations.
            _groupScratch.clear();
            for (int p : _network->delivered())
                _groupScratch.emplace_back(_network->unit(p).tag(), p);
            std::stable_sort(_groupScratch.begin(), _groupScratch.end(),
                             [](const auto &a, const auto &b) {
                                 return a.first < b.first;
                             });
            for (std::size_t i = 0; i < _groupScratch.size();) {
                std::size_t j = i;
                while (j < _groupScratch.size() &&
                       _groupScratch[j].first == _groupScratch[i].first)
                    ++j;
                SyncRecord record;
                record.cycle = _now;
                for (std::size_t k = i; k < j; ++k)
                    record.members.push_back(_groupScratch[k].second);
                if (_membershipViolation.empty()) {
                    _membershipViolation =
                        checkMembership(record.members, _now);
                }
                for (int m : record.members) {
                    record.arrivals.push_back(
                        _lastArrival[static_cast<std::size_t>(m)]);
                    record.crossings.push_back(
                        std::numeric_limits<std::uint64_t>::max());
                }
                _syncRecords.push_back(std::move(record));
                for (std::size_t k = i; k < j; ++k) {
                    _openSyncRecord[static_cast<std::size_t>(
                        _groupScratch[k].second)] =
                        _syncRecords.size() - 1;
                }
                i = j;
            }
            if (_config.syncRecordWindow != 0)
                pruneSyncRecords();
        }

        if (_trace) {
            _traceStates.clear();
            _traceHalted.clear();
            for (int p = 0; p < n; ++p) {
                _traceStates.push_back(_network->unit(p).state());
                _traceHalted.push_back(
                    _processors[static_cast<std::size_t>(p)]->halted());
            }
            _trace->record(_traceStates, _traceHalted, delivered > 0);
        }

        if (_watchdog) {
            // The watchdog only gets processor *halt* status — a
            // frozen core looks alive from the outside, which is
            // exactly the straggler-vs-dead ambiguity the backoff
            // path must resolve. _wdHalted is maintained on halt /
            // kill / fence edges, so no per-cycle scan happens here.
            std::vector<int> dead =
                _watchdog->tick(*_network, _wdHalted, _now);
            if (!dead.empty()) {
                applyRecovery(dead, _now);
                any_progress = true;
            }
        }

        if (all_halted)
            break;

        if (!any_progress &&
            (!_injector || !_injector->pendingActivity(_now)) &&
            (!_watchdog || !_watchdog->armed())) {
            result.deadlocked = true;
            result.deadlockInfo = describeState();
            break;
        }

        if (windowed) {
            // Window bound: no processor may run ahead into a cycle
            // where a global action could affect it — a fault event
            // or thaw, a watchdog recovery (which can fence a live
            // straggler), a checkpoint capture (which needs every
            // core aligned), or the end of the run. Barrier pulse
            // deliveries deliberately do NOT bound the window: a
            // private tick never reads anything a delivery changes
            // (Ready vs Synced both sit on the far side of the
            // NonBarrier test in isPrivateTick), which is exactly the
            // fuzzy barrier's license to keep computing while the
            // sync propagates.
            std::uint64_t window = _now + 1 + quantum;
            window = std::min(window, _config.maxCycles);
            if (_config.checkpointEveryCycles != 0) {
                const std::uint64_t every =
                    _config.checkpointEveryCycles;
                window = std::min(window, (_now / every + 1) * every);
            }
            if (_injector)
                window = std::min(window,
                                  _injector->nextActivityCycle(_now));
            if (_watchdog && _watchdog->armed())
                window = std::min(
                    window,
                    std::max(_watchdog->nextDeadline(), _now + 1));

            // Rendezvous with the shard threads only when some core
            // can actually use the window; everything else is the
            // fast-forward skip below, which costs no synchronization.
            bool dispatch = false;
            if (window > _now + 1) {
                // Publish per-core private-read horizons first: the
                // dispatch decision below already consults them via
                // isPrivateTick's load predicate, and the window's
                // release barrier makes them visible to every shard.
                if (_config.privateReads)
                    computePrivateReadHorizons();
                for (int p : _active) {
                    const auto sp = static_cast<std::size_t>(p);
                    if (_injector && _injector->frozen(p, _now))
                        continue;
                    if (_procNext[sp] < window &&
                        _processors[sp]->isPrivateTick(_procNext[sp])) {
                        dispatch = true;
                        break;
                    }
                }
            }
            if (dispatch) {
                _windowActive = true;
                if (sharded)
                    driver->advanceWindow(window);
                else
                    advanceShardRange(0, n, window);
                _windowActive = false;
                flushDeferredReads();
            }

            // Generalized fast-forward: a core that ran ahead needs
            // no coordinator attention before _procNext[p]; everyone
            // else contributes its usual nextEventCycle(). The global
            // clock still lands on every delivery, fault action and
            // watchdog deadline.
            std::uint64_t target = never;
            for (int p : _active) {
                const auto sp = static_cast<std::size_t>(p);
                if (_injector && _injector->frozen(p, _now))
                    continue;
                if (_procNext[sp] > _now + 1)
                    target = std::min(target, _procNext[sp]);
                else
                    target = std::min(
                        target, _processors[sp]->nextEventCycle(_now));
                if (target <= _now + 1)
                    break;
            }
            {
                const std::uint64_t delivery =
                    _network->nextDeliveryCycle();
                if (delivery != never)
                    target = std::min(target,
                                      std::max(delivery, _now + 1));
            }
            if (_injector)
                target = std::min(target,
                                  _injector->nextActivityCycle(_now));
            if (_watchdog && _watchdog->armed())
                target = std::min(
                    target,
                    std::max(_watchdog->nextDeadline(), _now + 1));

            if (target != never && target > _now + 1) {
                // Same deadlock guard as the sequential skip; a core
                // that ran ahead made progress on every cycle the
                // skip would cover, so it counts as wait progress.
                bool wait_progress = _network->deliveryPending();
                for (int p : _active) {
                    if (wait_progress)
                        break;
                    if (_injector && _injector->frozen(p, _now))
                        continue;
                    const auto sp = static_cast<std::size_t>(p);
                    wait_progress =
                        _procNext[sp] > _now + 1 ||
                        _processors[sp]->progressWhileWaiting();
                }
                bool would_deadlock =
                    !wait_progress &&
                    (!_injector || !_injector->pendingActivity(_now)) &&
                    (!_watchdog || !_watchdog->armed());
                std::uint64_t stop =
                    std::min(target, _config.maxCycles);
                if (_config.checkpointEveryCycles != 0) {
                    const std::uint64_t every =
                        _config.checkpointEveryCycles;
                    stop = std::min(stop, (_now / every + 1) * every);
                }
                if (!would_deadlock && stop > _now + 1) {
                    std::uint64_t skipped = stop - _now - 1;
                    for (int p : _active) {
                        const auto sp = static_cast<std::size_t>(p);
                        if (_injector && _injector->frozen(p, _now))
                            continue;
                        if (_procNext[sp] > _now + 1)
                            continue;  // these cycles already ran
                        _processors[sp]->advanceWait(skipped);
                    }
                    _now += skipped;
                }
            }
        } else if (fast_forward) {
            // Every cycle from _now + 1 up to (excluding) the next
            // interesting cycle is pure wait: each skipped body would
            // only apply the fixed per-state accounting, evaluate()
            // and the fault machinery would be no-ops, and the
            // termination checks could not fire — with one exception.
            // The legacy loop declares deadlock as soon as a cycle
            // makes no progress, even if a stalled core's timer
            // interrupt is still scheduled; reproduce that by never
            // skipping when the waiters' ticks would all report
            // BarrierWait and neither injector nor watchdog is live.
            std::uint64_t target = nextInterestingCycle();
            if (target != never && target > _now + 1) {
                bool wait_progress = _network->deliveryPending();
                for (int p : _active) {
                    if (wait_progress)
                        break;
                    if (_injector && _injector->frozen(p, _now))
                        continue;
                    wait_progress =
                        _processors[static_cast<std::size_t>(p)]
                            ->progressWhileWaiting();
                }
                bool would_deadlock =
                    !wait_progress &&
                    (!_injector || !_injector->pendingActivity(_now)) &&
                    (!_watchdog || !_watchdog->armed());
                std::uint64_t stop =
                    std::min(target, _config.maxCycles);
                if (_config.checkpointEveryCycles != 0) {
                    // Land exactly on every checkpoint multiple so a
                    // periodic snapshot is taken at the same cycles
                    // the per-cycle loop would take it. advanceWait()
                    // makes the split bit-identical, so the clamp
                    // never changes results — only where time pauses.
                    const std::uint64_t every =
                        _config.checkpointEveryCycles;
                    const std::uint64_t next_cp =
                        (_now / every + 1) * every;
                    stop = std::min(stop, next_cp);
                }
                if (!would_deadlock && stop > _now + 1) {
                    std::uint64_t skipped = stop - _now - 1;
                    for (int p : _active) {
                        if (_injector && _injector->frozen(p, _now))
                            continue;
                        _processors[static_cast<std::size_t>(p)]
                            ->advanceWait(skipped);
                    }
                    _now += skipped;
                }
            }
        }

        ++_now;
        if (_now >= _config.maxCycles) {
            result.timedOut = true;
            break;
        }

        if (_config.checkpointEveryCycles != 0 &&
            (_checkpointSink || _stagedSink) &&
            _now % _config.checkpointEveryCycles == 0) {
            // Loop bottom is the one cut point at which re-entering
            // run() at the loop top replays the remainder exactly:
            // the restored machine re-derives _active and proceeds
            // from cycle _now as if nothing had happened.
            if (_stagedSink) {
                takeStagedCheckpoint(_now /
                                     _config.checkpointEveryCycles);
            } else if (!_checkpointSink(
                           _now, saveState(_now /
                                           _config
                                               .checkpointEveryCycles))) {
                _checkpointSink = nullptr;
            }
        }
    }

    // Epoch bookkeeping must not outlive the run: state mutated after
    // the last capture belongs to no checkpoint.
    if (_deltaEpochOpen) {
        endDeltaEpoch();
        _deltaEpochOpen = false;
    }

    result.cycles = _now;
    result.syncEvents = _network->syncEvents();
    result.syncRecordsDropped = _syncRecordsDropped;
    result.busRequests = _bus->requests();
    result.busQueueDelay = _bus->totalQueueDelay();
    result.memAccesses = _memory->totalAccesses();
    result.hotSpotAccesses = _memory->hotSpotAccesses();
    result.invalidationsSent = _invalidationsSent;
    result.invalidationsAvoided = _invalidationsAvoided;
    result.recoveries = _recoveries;
    result.deadDeclared = _deadDeclared;
    result.correctedFaults = _network->correctedFaults();
    result.membershipViolation = _membershipViolation;
    result.checkpointsFull = _checkpointsFull;
    result.checkpointsDelta = _checkpointsDelta;
    result.checkpointDegradations = _checkpointDegradations;
    result.checkpointDegradation = _checkpointDegradation;
    if (_injector)
        result.faultStats = _injector->stats();
    if (_watchdog)
        result.watchdogStats = _watchdog->stats();

    for (int p = 0; p < n; ++p) {
        const auto &proc = *_processors[static_cast<std::size_t>(p)];
        const auto &unit = _network->unit(p);
        const auto &cache = *_caches[static_cast<std::size_t>(p)];
        ProcessorStats ps;
        ps.instructions = proc.instructions();
        ps.barrierWaitCycles = proc.barrierWaitCycles();
        ps.contextSwitchCycles = proc.contextSwitchCycles();
        ps.contextSwitches = proc.contextSwitches();
        ps.interruptsTaken = proc.interruptsTaken();
        ps.barrierEpisodes = unit.episodes();
        ps.stalledEpisodes = unit.stalledEpisodes();
        ps.stallCycles = unit.stallCycles();
        ps.cacheHits = cache.hits();
        ps.cacheMisses = cache.misses();
        result.perProcessor.push_back(ps);
    }
    return result;
}

void
Machine::advanceShardRange(int first, int last, std::uint64_t stop)
{
    for (int p = first; p < last; ++p) {
        const auto sp = static_cast<std::size_t>(p);
        if (_fenced[sp])
            continue;
        Processor &proc = *_processors[sp];
        if (proc.halted())
            continue;
        // Freeze boundaries are injector events and the window never
        // crosses one, so frozen status is constant across the whole
        // window — a frozen core simply sits out, exactly as the
        // per-cycle loop would leave it.
        if (_injector && _injector->frozen(p, _now))
            continue;
        if (_procNext[sp] >= stop)
            continue;
        FB_ASSERT(_procNext[sp] > _now,
                  "shard window started behind the global clock on cpu "
                      << p);
        _procNext[sp] = proc.runPrivate(_procNext[sp], stop);
    }
}

void
Machine::flushDeferredReads()
{
    const std::size_t line_words =
        std::max<std::size_t>(1, _config.cache.lineWords);
    for (int p = 0; p < numProcessors(); ++p) {
        auto &reads = _deferredReads[static_cast<std::size_t>(p)];
        if (reads.empty())
            continue;
        const std::uint64_t bit = 1ull << (p & 63);
        for (std::size_t addr : reads) {
            _memory->recordAccess(addr);
            const std::size_t line = addr / line_words;
            if (line < _lineSharers.size()) {
                _lineSharers[line] |= bit;
                markSharerEpoch(line);
            }
        }
        reads.clear();
    }
}

std::uint64_t
Machine::writeBoundFor(int q) const
{
    const auto sq = static_cast<std::size_t>(q);
    const Processor &proc = *_processors[sq];
    if (proc.blockedAtBarrier()) {
        // Stalled at a barrier: the earliest globally visible action
        // is at its wake-up — the pending delivery if one is armed,
        // else the soonest a future completion could deliver (next
        // cycle's AND plus the flat propagation floor; hierarchical
        // topologies only add latency), or a timer interrupt, whose
        // service routine may store.
        std::uint64_t bound = _network->deliveryCycleFor(q);
        bound = std::min(
            bound, _now + 1 + std::uint64_t{_config.syncLatency});
        bound = std::min(bound, proc.nextEventCycle(_now));
        return bound;
    }
    // Running: the skew cursor is the next cycle it can execute
    // anything at all, stores included.
    return _procNext[sq];
}

void
Machine::computePrivateReadHorizons()
{
    // horizon(p) = min over every other core q of writeBoundFor(q),
    // computed for all cores at once with the two-smallest trick.
    // Fenced and halted cores are out of _active and can never store
    // again; frozen cores cannot act before the window closes (the
    // window is clamped to the injector's next activity, and a thaw
    // is an injector activity).
    constexpr std::uint64_t never =
        std::numeric_limits<std::uint64_t>::max();
    std::uint64_t m1 = never;
    std::uint64_t m2 = never;
    int argmin = -1;
    for (int q : _active) {
        if (_injector && _injector->frozen(q, _now))
            continue;
        const std::uint64_t b = writeBoundFor(q);
        if (b < m1) {
            m2 = m1;
            m1 = b;
            argmin = q;
        } else if (b < m2) {
            m2 = b;
        }
    }
    for (int p : _active) {
        const auto sp = static_cast<std::size_t>(p);
        _processors[sp]->setPrivateReadHorizon(p == argmin ? m2 : m1);
    }
}

std::uint64_t
Machine::nextInterestingCycle() const
{
    constexpr std::uint64_t never =
        std::numeric_limits<std::uint64_t>::max();
    std::uint64_t next = never;

    for (int p : _active) {
        // A frozen processor does not tick; it is woken by the thaw,
        // which the injector reports below. (Freeze boundaries are
        // injector events, so frozen status is constant across any
        // window this function allows to be skipped.)
        if (_injector && _injector->frozen(p, _now))
            continue;
        next = std::min(
            next,
            _processors[static_cast<std::size_t>(p)]->nextEventCycle(
                _now));
        if (next <= _now + 1)
            return _now + 1;
    }

    std::uint64_t delivery = _network->nextDeliveryCycle();
    if (delivery != never)
        next = std::min(next, std::max(delivery, _now + 1));

    if (_injector)
        next = std::min(next, _injector->nextActivityCycle(_now));

    if (_watchdog && _watchdog->armed())
        next = std::min(next,
                        std::max(_watchdog->nextDeadline(), _now + 1));

    return next;
}

void
Machine::pruneSyncRecords()
{
    const std::size_t window = _config.syncRecordWindow;
    if (window == 0 || _syncRecords.size() <= window)
        return;
    std::size_t k = _syncRecords.size() - window;
    // Records the open delta-checkpoint epoch still patches are
    // pinned: the next CoreDelta re-encodes everything from
    // _epochSyncPatchFrom, so rotating past it would leave the patch
    // point dangling. (Prunes below it decrement it in lockstep, so
    // it keeps naming the same record.)
    if (_epochCoreTracking)
        k = std::min(k, _epochSyncPatchFrom);
    // Open records are pinned too — onCross() patches crossings into
    // them by index. A processor killed inside a region leaves its
    // record open forever, capping how far rotation can advance; that
    // is bounded by the processor count and is the conservative
    // choice (the un-crossed record is exactly the interesting one).
    for (std::size_t open : _openSyncRecord) {
        if (open != std::numeric_limits<std::size_t>::max())
            k = std::min(k, open);
    }
    if (k == 0)
        return;
    _syncRecords.erase(
        _syncRecords.begin(),
        _syncRecords.begin() + static_cast<std::ptrdiff_t>(k));
    _syncRecordsDropped += k;
    for (std::size_t &open : _openSyncRecord) {
        if (open != std::numeric_limits<std::size_t>::max())
            open -= k;
    }
    if (_epochCoreTracking)
        _epochSyncPatchFrom -= k;
}

std::string
Machine::checkSafetyProperty() const
{
    for (std::size_t r = 0; r < _syncRecords.size(); ++r) {
        const SyncRecord &record = _syncRecords[r];
        std::uint64_t latest_arrival = 0;
        for (auto a : record.arrivals)
            latest_arrival = std::max(latest_arrival, a);
        for (std::size_t i = 0; i < record.members.size(); ++i) {
            std::uint64_t crossing = record.crossings[i];
            if (crossing == std::numeric_limits<std::uint64_t>::max())
                continue;  // never crossed (halted inside the region)
            if (crossing <= latest_arrival) {
                std::ostringstream oss;
                oss << "safety violation in sync record " << r
                    << ": processor " << record.members[i]
                    << " crossed at cycle " << crossing
                    << " but the latest arrival was at cycle "
                    << latest_arrival;
                return oss.str();
            }
        }
    }
    return "";
}

void
Machine::applyRecovery(const std::vector<int> &dead, std::uint64_t now)
{
    for (int d : dead) {
        if (_fenced[static_cast<std::size_t>(d)])
            continue;
        _fenced[static_cast<std::size_t>(d)] = true;
        _wdHalted[static_cast<std::size_t>(d)] = true;
        _deadDeclared.push_back(d);

        RecoveryEvent event;
        event.cycle = now;
        event.deadProc = d;
        // Mask-shrink: every live processor still synchronizing with
        // the dead one drops its mask bit and bumps its epoch. The
        // dead unit itself is left untouched — its stale epoch is
        // exactly what discards its latched ready-pulse from the
        // survivors' AND, and the survivors' new epoch keeps their
        // pulses from ever completing the dead unit's group.
        for (int p = 0; p < numProcessors(); ++p) {
            if (p == d || _fenced[static_cast<std::size_t>(p)])
                continue;
            auto &u = _network->unit(p);
            if (!u.mask().test(static_cast<std::size_t>(d)))
                continue;
            u.setMaskBit(d, false);
            u.bumpEpoch();
            event.survivors.push_back(p);
        }

        std::ostringstream oss;
        oss << "watchdog: cpu" << d << " declared dead at cycle " << now
            << "; " << event.survivors.size()
            << " survivor(s) shrink masks and enter epoch ";
        if (!event.survivors.empty())
            oss << _network->unit(event.survivors.front()).epoch();
        else
            oss << "(none)";
        warn(oss.str());
        _recoveries.push_back(std::move(event));
    }
}

std::string
Machine::checkMembership(const std::vector<int> &members,
                         std::uint64_t now) const
{
    for (int m : members) {
        const auto &u = _network->unit(m);
        std::string violation;
        u.mask().forEachSet([&](std::size_t sq) {
            if (!violation.empty())
                return;
            const int q = static_cast<int>(sq);
            if (_fenced[sq])
                return;  // legitimately excluded by recovery
            const auto &other = _network->unit(q);
            if (other.tag() != u.tag() || other.epoch() != u.epoch())
                return;
            if (std::find(members.begin(), members.end(), q) ==
                members.end()) {
                std::ostringstream oss;
                oss << "fault-safety violation at cycle " << now
                    << ": cpu" << m << " synchronized on tag "
                    << u.tag() << " epoch " << u.epoch()
                    << " without live member cpu" << q;
                violation = oss.str();
            }
        });
        if (!violation.empty())
            return violation;
    }
    return "";
}

std::uint64_t
Machine::configFingerprint() const
{
    snapshot::Fnv1a h;
    h.mix(static_cast<std::uint64_t>(_config.numProcessors));
    h.mix(static_cast<std::uint64_t>(_config.issueWidth));
    h.mix(static_cast<std::uint64_t>(_config.pipelineDepth));
    h.mix(_config.memWords);
    h.mix(_config.cache.enabled ? 1 : 0);
    h.mix(_config.cache.numLines);
    h.mix(_config.cache.lineWords);
    h.mix(_config.cache.missPenalty);
    h.mix(_config.busServiceCycles);
    h.mix(static_cast<std::uint64_t>(_config.busKind));
    h.mix(_config.syncLatency);
    // The topology changes reported latencies (delivery cycles, wait
    // counters), so it is as result-relevant as syncLatency itself.
    h.mix(static_cast<std::uint64_t>(_config.topology.kind));
    h.mix(static_cast<std::uint64_t>(_config.topology.param));
    h.mix(_config.topology.levelLatency);
    h.mix(static_cast<std::uint64_t>(_config.stall.kind));
    h.mix(_config.stall.saveCycles);
    h.mix(_config.stall.restoreCycles);
    h.mix(std::bit_cast<std::uint64_t>(_config.jitterMean));
    h.mix(_config.seed);
    h.mix(_config.interruptPeriod);
    h.mix(static_cast<std::uint64_t>(_config.isrEntry));
    h.mix(_config.maxCycles);
    h.mix(_config.recordSyncEvents ? 1 : 0);
    // The record window changes what the run retains (and the wire
    // bytes of every checkpoint), so unlike the knobs excluded below
    // it participates.
    h.mix(_config.syncRecordWindow);
    h.mix(_config.fastForward ? 1 : 0);
    // checkpointEveryCycles, checkpointRebaseEvery, shardCount,
    // shardQuantum, predecode and privateReads are deliberately
    // excluded: none of them changes results, so snapshots taken at
    // different cadences — or under a different shard layout or
    // execution backend — are mutually restorable.
    h.mixString(_config.faultPlan != nullptr ? _config.faultPlan->toSpec()
                                             : std::string());
    h.mix(_config.watchdog.enabled ? 1 : 0);
    h.mix(_config.watchdog.timeoutCycles);
    h.mix(static_cast<std::uint64_t>(_config.watchdog.maxAttempts));

    // The loaded code is as much an input as the config: restoring
    // state into different programs would replay garbage.
    h.mix(_programs.size());
    for (const auto &prog : _programs) {
        h.mix(prog.size());
        for (std::size_t i = 0; i < prog.size(); ++i) {
            const isa::Instruction &instr = prog.at(i);
            h.mix(static_cast<std::uint64_t>(instr.op));
            h.mix(static_cast<std::uint64_t>(instr.rd));
            h.mix(static_cast<std::uint64_t>(instr.rs1));
            h.mix(static_cast<std::uint64_t>(instr.rs2));
            h.mix(static_cast<std::uint64_t>(instr.imm));
            h.mix(instr.inRegion ? 1 : 0);
            h.mix(static_cast<std::uint64_t>(prog.barrierId(i)));
        }
    }
    return h.value();
}

namespace
{

constexpr std::uint64_t neverCrossed =
    std::numeric_limits<std::uint64_t>::max();

/**
 * Sync records dominate snapshot payloads (a busy epoch appends
 * hundreds), so they get a packed wire form. Arrivals precede the
 * record's delivery cycle and crossings follow it, so both compress
 * to 32-bit offsets from the cycle; members fit a byte. A record any
 * of that doesn't hold for (huge stalls, >256 processors) falls back
 * to the full-width layout behind a per-record flag — the packing is
 * lossless by construction, never by assumption.
 */
void
encodeSyncRecord(snapshot::Encoder &e, const SyncRecord &r)
{
    const std::size_t n = r.members.size();
    bool narrow = n <= 0xff && r.arrivals.size() == n &&
                  r.crossings.size() == n;
    for (std::size_t i = 0; narrow && i < n; ++i)
        narrow = r.members[i] >= 0 && r.members[i] <= 0xff &&
                 r.arrivals[i] <= r.cycle &&
                 r.cycle - r.arrivals[i] < 0xffffffffu &&
                 (r.crossings[i] == neverCrossed ||
                  (r.crossings[i] >= r.cycle &&
                   r.crossings[i] - r.cycle < 0xffffffffu));
    e.u64(r.cycle);
    e.u8(narrow ? 1 : 0);
    if (narrow) {
        e.u8(static_cast<std::uint8_t>(n));
        for (int m : r.members)
            e.u8(static_cast<std::uint8_t>(m));
        for (std::size_t i = 0; i < n; ++i)
            e.u32(static_cast<std::uint32_t>(r.cycle - r.arrivals[i]));
        for (std::size_t i = 0; i < n; ++i)
            e.u32(r.crossings[i] == neverCrossed
                      ? 0xffffffffu
                      : static_cast<std::uint32_t>(r.crossings[i] -
                                                   r.cycle));
    } else {
        e.u64(n);
        for (int m : r.members)
            e.i64(m);
        e.u64Vec(r.arrivals);
        e.u64Vec(r.crossings);
    }
}

void
decodeSyncRecord(snapshot::Decoder &d, SyncRecord &r)
{
    r.cycle = d.u64();
    if (d.u8() != 0) {
        const std::size_t n = d.u8();
        r.members.reserve(n);
        r.arrivals.reserve(n);
        r.crossings.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            r.members.push_back(static_cast<int>(d.u8()));
        for (std::size_t i = 0; i < n; ++i)
            r.arrivals.push_back(r.cycle - d.u32());
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint32_t off = d.u32();
            r.crossings.push_back(off == 0xffffffffu ? neverCrossed
                                                     : r.cycle + off);
        }
    } else {
        const std::uint64_t n = d.u64();
        for (std::uint64_t i = 0; i < n && d.ok(); ++i)
            r.members.push_back(static_cast<int>(d.i64()));
        d.u64Vec(r.arrivals);
        d.u64Vec(r.crossings);
    }
}

} // namespace

std::vector<snapshot::Section>
Machine::buildFullSections() const
{
    std::vector<snapshot::Section> sections;
    auto add = [&sections](snapshot::SectionId id,
                           snapshot::Encoder &&e) {
        snapshot::Section s;
        s.id = static_cast<std::uint32_t>(id);
        s.payload = std::move(e).take();
        sections.push_back(std::move(s));
    };

    {
        snapshot::Encoder e;
        std::size_t record_bytes = 0;
        for (const SyncRecord &r : _syncRecords)
            record_bytes += 16 + 10 * r.members.size();
        e.reserve(record_bytes + 512);
        e.u64(_now);
        e.boolVec(_fenced);
        e.u64(_deadDeclared.size());
        for (int d : _deadDeclared)
            e.i64(d);
        e.u64(_recoveries.size());
        for (const RecoveryEvent &r : _recoveries) {
            e.u64(r.cycle);
            e.i64(r.deadProc);
            e.u64(r.survivors.size());
            for (int s : r.survivors)
                e.i64(s);
        }
        e.u64Vec(_lastArrival);
        e.u64(_openSyncRecord.size());
        for (std::size_t v : _openSyncRecord)
            e.u64(v);
        e.u64(_syncRecordsDropped);
        e.u64(_syncRecords.size());
        for (const SyncRecord &r : _syncRecords)
            encodeSyncRecord(e, r);
        e.str(_membershipViolation);
        e.u64(_invalidationsSent);
        e.u64(_invalidationsAvoided);
        // Sharer masks, sparse: most lines are never touched.
        e.u64(_lineSharers.size());
        std::uint64_t nonzero = 0;
        for (std::uint64_t mask : _lineSharers)
            if (mask != 0)
                ++nonzero;
        e.u64(nonzero);
        for (std::size_t i = 0; i < _lineSharers.size(); ++i) {
            if (_lineSharers[i] != 0) {
                e.u64(i);
                e.u64(_lineSharers[i]);
            }
        }
        add(snapshot::SectionId::MachineCore, std::move(e));
    }
    {
        snapshot::Encoder e;
        _memory->encodeState(e);
        add(snapshot::SectionId::Memory, std::move(e));
    }
    {
        snapshot::Encoder e;
        _bus->encodeState(e);
        add(snapshot::SectionId::Bus, std::move(e));
    }
    {
        snapshot::Encoder e;
        _network->encodeState(e);
        add(snapshot::SectionId::Network, std::move(e));
    }
    {
        snapshot::Encoder e;
        e.u64(_caches.size());
        for (const auto &cache : _caches)
            cache->encodeState(e);
        add(snapshot::SectionId::Caches, std::move(e));
    }
    {
        snapshot::Encoder e;
        e.u64(_processors.size());
        for (const auto &proc : _processors)
            proc->encodeState(e);
        add(snapshot::SectionId::Processors, std::move(e));
    }
    if (_injector) {
        snapshot::Encoder e;
        _injector->encodeState(e);
        add(snapshot::SectionId::Injector, std::move(e));
    }
    if (_watchdog) {
        snapshot::Encoder e;
        _watchdog->encodeState(e);
        add(snapshot::SectionId::Watchdog, std::move(e));
    }
    return sections;
}

std::vector<snapshot::Section>
Machine::buildDeltaSections() const
{
    std::vector<snapshot::Section> sections;
    auto add = [&sections](snapshot::SectionId id,
                           snapshot::Encoder &&e) {
        snapshot::Section s;
        s.id = static_cast<std::uint32_t>(id);
        s.payload = std::move(e).take();
        sections.push_back(std::move(s));
    };

    {
        // Core delta: the scalars and small per-processor vectors are
        // cheap enough to re-encode absolutely; the two unbounded
        // collections — sync records and sharer masks — are encoded
        // incrementally. Records before _epochSyncPatchFrom were
        // closed (immutable) when the epoch began; apply truncates to
        // the patch point and re-appends the rest.
        snapshot::Encoder e;
        // The record tail dominates the payload; pre-size for it so
        // the encode is one allocation instead of a realloc ladder.
        std::size_t tail_bytes = 0;
        for (std::size_t k = _epochSyncPatchFrom;
             k < _syncRecords.size(); ++k)
            tail_bytes += 16 + 10 * _syncRecords[k].members.size();
        e.reserve(tail_bytes + 512);
        e.u64(_now);
        e.boolVec(_fenced);
        e.u64(_deadDeclared.size());
        for (int d : _deadDeclared)
            e.i64(d);
        e.u64(_recoveries.size());
        for (const RecoveryEvent &r : _recoveries) {
            e.u64(r.cycle);
            e.i64(r.deadProc);
            e.u64(r.survivors.size());
            for (int s : r.survivors)
                e.i64(s);
        }
        e.u64Vec(_lastArrival);
        e.u64(_openSyncRecord.size());
        for (std::size_t v : _openSyncRecord)
            e.u64(v);
        e.u64(_syncRecordsDropped);
        e.u64(_epochSyncPatchFrom);
        e.u64(_syncRecords.size());
        for (std::size_t k = _epochSyncPatchFrom;
             k < _syncRecords.size(); ++k)
            encodeSyncRecord(e, _syncRecords[k]);
        e.str(_membershipViolation);
        e.u64(_invalidationsSent);
        e.u64(_invalidationsAvoided);
        // Sharer masks: absolute masks of the lines mutated this
        // epoch (a mask never returns to zero during a run, so this
        // patch set is complete).
        std::vector<std::size_t> lines(_epochSharerLines);
        std::sort(lines.begin(), lines.end());
        e.u64(_lineSharers.size());
        e.u64(lines.size());
        for (std::size_t line : lines) {
            e.u64(line);
            e.u64(_lineSharers[line]);
        }
        add(snapshot::SectionId::CoreDelta, std::move(e));
    }
    {
        snapshot::Encoder e;
        _memory->encodeDeltaState(e);
        add(snapshot::SectionId::MemoryDelta, std::move(e));
    }
    {
        snapshot::Encoder e;
        _bus->encodeDeltaState(e);
        add(snapshot::SectionId::BusDelta, std::move(e));
    }
    {
        // The network's state is a handful of words per processor —
        // no delta form pays for itself.
        snapshot::Encoder e;
        _network->encodeState(e);
        add(snapshot::SectionId::Network, std::move(e));
    }
    {
        snapshot::Encoder e;
        e.u64(_caches.size());
        for (const auto &cache : _caches)
            cache->encodeDeltaState(e);
        add(snapshot::SectionId::CacheDelta, std::move(e));
    }
    {
        snapshot::Encoder e;
        e.u64(_processors.size());
        for (const auto &proc : _processors)
            proc->encodeState(e);
        add(snapshot::SectionId::Processors, std::move(e));
    }
    if (_injector) {
        snapshot::Encoder e;
        _injector->encodeState(e);
        add(snapshot::SectionId::Injector, std::move(e));
    }
    if (_watchdog) {
        snapshot::Encoder e;
        _watchdog->encodeState(e);
        add(snapshot::SectionId::Watchdog, std::move(e));
    }
    return sections;
}

void
Machine::beginDeltaEpoch()
{
    _memory->beginDeltaEpoch();
    _bus->beginDeltaEpoch();
    for (auto &cache : _caches)
        cache->beginDeltaEpoch();
    for (std::size_t line : _epochSharerLines)
        _epochSharerDirty[line] = false;
    _epochSharerLines.clear();
    _epochSharerDirty.resize(_lineSharers.size(), false);
    _epochSyncPatchFrom = _syncRecords.size();
    for (std::size_t open : _openSyncRecord) {
        if (open != std::numeric_limits<std::size_t>::max())
            _epochSyncPatchFrom = std::min(_epochSyncPatchFrom, open);
    }
    _epochCoreTracking = true;
}

void
Machine::endDeltaEpoch()
{
    _memory->endDeltaEpoch();
    _bus->endDeltaEpoch();
    for (auto &cache : _caches)
        cache->endDeltaEpoch();
    for (std::size_t line : _epochSharerLines)
        _epochSharerDirty[line] = false;
    _epochSharerLines.clear();
    _epochSyncPatchFrom = 0;
    _epochCoreTracking = false;
}

void
Machine::setStagedCheckpointSink(StagedCheckpointSink sink)
{
    _stagedSink = std::move(sink);
    _checkpointSink = nullptr;
    endDeltaEpoch();
    _deltaEpochOpen = false;
    _deltasDisabled = false;
    _forceFullNext = false;
    _checkpointSeq = 0;
    _chainBaseGen = 0;
    _lastCheckpointGen = 0;
    _checkpointsFull = 0;
    _checkpointsDelta = 0;
    _checkpointDegradations = 0;
    _checkpointDegradation.clear();
}

void
Machine::takeStagedCheckpoint(std::uint64_t generation)
{
    FB_ASSERT(!_trace, "checkpointing is unsupported while tracing "
                       "barrier states (the trace is not serialized)");
    const std::uint32_t rebase =
        std::max<std::uint32_t>(1, _config.checkpointRebaseEvery);
    const bool delta = _deltaEpochOpen && !_deltasDisabled &&
                       !_forceFullNext &&
                       _checkpointSeq % rebase != 0;

    snapshot::SnapshotHeader header;
    header.configFingerprint = configFingerprint();
    header.cycle = _now;
    header.generation = generation;
    if (delta) {
        header.baseFull = _chainBaseGen;
        header.prev = _lastCheckpointGen;
    } else {
        header.baseFull = generation;
        header.prev = generation;
    }
    std::vector<snapshot::Section> sections =
        delta ? buildDeltaSections() : buildFullSections();

    // Roll the epoch over *after* capturing: the next delta describes
    // everything mutated from this capture on.
    beginDeltaEpoch();
    _deltaEpochOpen = true;
    ++_checkpointSeq;
    if (delta) {
        ++_checkpointsDelta;
    } else {
        ++_checkpointsFull;
        _chainBaseGen = generation;
    }
    _lastCheckpointGen = generation;
    _forceFullNext = false;

    CheckpointAck ack =
        _stagedSink(std::move(header), std::move(sections));
    if (!ack.degradation.empty()) {
        _checkpointDegradation = ack.degradation;
        ++_checkpointDegradations;
    }
    if (ack.forceFull)
        _forceFullNext = true;
    if (!ack.deltasOk)
        _deltasDisabled = true;
    if (!ack.keep) {
        _stagedSink = nullptr;
        endDeltaEpoch();
        _deltaEpochOpen = false;
    }
}

std::vector<std::uint8_t>
Machine::saveState(std::uint64_t generation) const
{
    FB_ASSERT(!_trace, "checkpointing is unsupported while tracing "
                       "barrier states (the trace is not serialized)");

    snapshot::SnapshotHeader header;
    header.configFingerprint = configFingerprint();
    header.cycle = _now;
    header.generation = generation;
    header.baseFull = generation;
    header.prev = generation;
    return snapshot::assemble(header, buildFullSections());
}

bool
Machine::restoreState(const std::vector<std::uint8_t> &bytes,
                      std::string &error)
{
    if (_trace) {
        error = "cannot restore while barrier-state tracing is enabled";
        return false;
    }
    // A partial restore can leave sharer masks the access stats no
    // longer cover; make the next reset() take the full clear unless
    // this restore completes.
    _sharersUnbounded = true;
    // Whatever epoch was open described the pre-restore state.
    endDeltaEpoch();
    _deltaEpochOpen = false;

    snapshot::SnapshotHeader header;
    std::vector<snapshot::Section> sections;
    if (!snapshot::disassemble(bytes, header, sections, error))
        return false;
    if (header.isDelta()) {
        std::ostringstream oss;
        oss << "snapshot generation " << header.generation
            << " is a delta (base " << header.baseFull
            << "); restore its chain instead";
        error = oss.str();
        return false;
    }
    if (header.configFingerprint != configFingerprint()) {
        std::ostringstream oss;
        oss << "config fingerprint mismatch: snapshot "
            << header.configFingerprint << ", this machine "
            << configFingerprint()
            << " (different config, programs or fault plan)";
        error = oss.str();
        return false;
    }

    auto fail = [&error](const char *what) {
        error = std::string("corrupt ") + what + " section";
        return false;
    };

    bool saw_core = false, saw_memory = false, saw_bus = false;
    bool saw_network = false, saw_caches = false, saw_procs = false;
    for (const snapshot::Section &s : sections) {
        snapshot::Decoder d(s.payload);
        switch (static_cast<snapshot::SectionId>(s.id)) {
          case snapshot::SectionId::MachineCore: {
            _now = d.u64();
            d.boolVec(_fenced);
            _deadDeclared.clear();
            const std::uint64_t dead = d.u64();
            for (std::uint64_t k = 0; k < dead && d.ok(); ++k)
                _deadDeclared.push_back(static_cast<int>(d.i64()));
            _recoveries.clear();
            const std::uint64_t recoveries = d.u64();
            for (std::uint64_t k = 0; k < recoveries && d.ok(); ++k) {
                RecoveryEvent r;
                r.cycle = d.u64();
                r.deadProc = static_cast<int>(d.i64());
                const std::uint64_t survivors = d.u64();
                for (std::uint64_t i = 0; i < survivors && d.ok(); ++i)
                    r.survivors.push_back(static_cast<int>(d.i64()));
                _recoveries.push_back(std::move(r));
            }
            d.u64Vec(_lastArrival);
            _openSyncRecord.clear();
            const std::uint64_t open = d.u64();
            for (std::uint64_t k = 0; k < open && d.ok(); ++k)
                _openSyncRecord.push_back(
                    static_cast<std::size_t>(d.u64()));
            _syncRecordsDropped = d.u64();
            _syncRecords.clear();
            const std::uint64_t records = d.u64();
            for (std::uint64_t k = 0; k < records && d.ok(); ++k) {
                SyncRecord r;
                decodeSyncRecord(d, r);
                _syncRecords.push_back(std::move(r));
            }
            _membershipViolation = d.str();
            _invalidationsSent = d.u64();
            _invalidationsAvoided = d.u64();
            const std::uint64_t sharer_lines = d.u64();
            if (!d.ok() || sharer_lines != _lineSharers.size())
                return fail("machine-core");
            std::fill(_lineSharers.begin(), _lineSharers.end(), 0);
            const std::uint64_t nonzero = d.u64();
            for (std::uint64_t k = 0; k < nonzero && d.ok(); ++k) {
                const std::uint64_t idx = d.u64();
                const std::uint64_t mask = d.u64();
                if (idx >= _lineSharers.size())
                    return fail("machine-core");
                _lineSharers[static_cast<std::size_t>(idx)] = mask;
            }
            const std::size_t n =
                static_cast<std::size_t>(numProcessors());
            if (!d.done() || _fenced.size() != n ||
                _lastArrival.size() != n || _openSyncRecord.size() != n)
                return fail("machine-core");
            saw_core = true;
            break;
          }
          case snapshot::SectionId::Memory:
            if (!_memory->decodeState(d) || !d.done())
                return fail("memory");
            saw_memory = true;
            break;
          case snapshot::SectionId::Bus:
            if (!_bus->decodeState(d) || !d.done())
                return fail("bus");
            saw_bus = true;
            break;
          case snapshot::SectionId::Network:
            if (!_network->decodeState(d) || !d.done())
                return fail("network");
            saw_network = true;
            break;
          case snapshot::SectionId::Caches: {
            if (d.u64() != _caches.size())
                return fail("caches");
            for (auto &cache : _caches)
                if (!cache->decodeState(d))
                    return fail("caches");
            if (!d.done())
                return fail("caches");
            saw_caches = true;
            break;
          }
          case snapshot::SectionId::Processors: {
            if (d.u64() != _processors.size())
                return fail("processors");
            for (auto &proc : _processors)
                if (!proc->decodeState(d))
                    return fail("processors");
            if (!d.done())
                return fail("processors");
            saw_procs = true;
            break;
          }
          case snapshot::SectionId::Injector:
            if (!_injector)
                return fail("injector (machine has no fault plan)");
            if (!_injector->decodeState(d) || !d.done())
                return fail("injector");
            break;
          case snapshot::SectionId::Watchdog:
            if (!_watchdog)
                return fail("watchdog (machine has no watchdog)");
            if (!_watchdog->decodeState(d) || !d.done())
                return fail("watchdog");
            break;
          default: {
            std::ostringstream oss;
            oss << "unknown snapshot section id " << s.id;
            error = oss.str();
            return false;
          }
        }
    }
    if (!saw_core || !saw_memory || !saw_bus || !saw_network ||
        !saw_caches || !saw_procs) {
        error = "snapshot is missing a required section";
        return false;
    }
    if (_now != header.cycle) {
        error = "snapshot header cycle disagrees with machine core";
        return false;
    }
    _sharersUnbounded = false;
    _restoredChainGen = header.generation;
    return true;
}

bool
Machine::applyDeltaState(const std::vector<std::uint8_t> &bytes,
                         std::string &error)
{
    if (_trace) {
        error = "cannot restore while barrier-state tracing is enabled";
        return false;
    }
    _sharersUnbounded = true;
    endDeltaEpoch();
    _deltaEpochOpen = false;

    snapshot::SnapshotHeader header;
    std::vector<snapshot::Section> sections;
    if (!snapshot::disassemble(bytes, header, sections, error))
        return false;
    if (!header.isDelta()) {
        std::ostringstream oss;
        oss << "snapshot generation " << header.generation
            << " is a full snapshot, not a delta";
        error = oss.str();
        return false;
    }
    if (header.prev != _restoredChainGen) {
        // Defense in depth below the store's chain walk: a delta only
        // patches the exact state its predecessor left behind, so an
        // out-of-order (or chainless) apply must fail loudly rather
        // than silently merge onto the wrong base.
        std::ostringstream oss;
        oss << "delta generation " << header.generation
            << " continues generation " << header.prev
            << ", but the last restored generation is "
            << _restoredChainGen << " (out-of-order chain)";
        error = oss.str();
        return false;
    }
    if (header.configFingerprint != configFingerprint()) {
        std::ostringstream oss;
        oss << "config fingerprint mismatch: snapshot "
            << header.configFingerprint << ", this machine "
            << configFingerprint()
            << " (different config, programs or fault plan)";
        error = oss.str();
        return false;
    }

    auto fail = [&error](const char *what) {
        error = std::string("corrupt ") + what + " section";
        return false;
    };

    bool saw_core = false, saw_memory = false, saw_bus = false;
    bool saw_network = false, saw_caches = false, saw_procs = false;
    for (const snapshot::Section &s : sections) {
        snapshot::Decoder d(s.payload);
        switch (static_cast<snapshot::SectionId>(s.id)) {
          case snapshot::SectionId::CoreDelta: {
            _now = d.u64();
            d.boolVec(_fenced);
            _deadDeclared.clear();
            const std::uint64_t dead = d.u64();
            for (std::uint64_t k = 0; k < dead && d.ok(); ++k)
                _deadDeclared.push_back(static_cast<int>(d.i64()));
            _recoveries.clear();
            const std::uint64_t recoveries = d.u64();
            for (std::uint64_t k = 0; k < recoveries && d.ok(); ++k) {
                RecoveryEvent r;
                r.cycle = d.u64();
                r.deadProc = static_cast<int>(d.i64());
                const std::uint64_t survivors = d.u64();
                for (std::uint64_t i = 0; i < survivors && d.ok(); ++i)
                    r.survivors.push_back(static_cast<int>(d.i64()));
                _recoveries.push_back(std::move(r));
            }
            d.u64Vec(_lastArrival);
            _openSyncRecord.clear();
            const std::uint64_t open = d.u64();
            for (std::uint64_t k = 0; k < open && d.ok(); ++k)
                _openSyncRecord.push_back(
                    static_cast<std::size_t>(d.u64()));
            // Rotation first: the source may have pruned old records
            // since its predecessor was captured; drop the same count
            // from the front so the vector indices below line up.
            const std::uint64_t dropped = d.u64();
            if (!d.ok() || dropped < _syncRecordsDropped ||
                dropped - _syncRecordsDropped > _syncRecords.size())
                return fail("core-delta");
            _syncRecords.erase(
                _syncRecords.begin(),
                _syncRecords.begin() +
                    static_cast<std::ptrdiff_t>(dropped -
                                                _syncRecordsDropped));
            _syncRecordsDropped = dropped;
            // Sync-record patch: truncate to the first record that
            // was still open when the delta's epoch began, then
            // re-append everything from there.
            const std::uint64_t patch_from = d.u64();
            const std::uint64_t records = d.u64();
            if (!d.ok() || patch_from > _syncRecords.size() ||
                patch_from > records)
                return fail("core-delta");
            _syncRecords.resize(static_cast<std::size_t>(patch_from));
            for (std::uint64_t k = patch_from; k < records && d.ok();
                 ++k) {
                SyncRecord r;
                decodeSyncRecord(d, r);
                _syncRecords.push_back(std::move(r));
            }
            if (_syncRecords.size() != records)
                return fail("core-delta");
            _membershipViolation = d.str();
            _invalidationsSent = d.u64();
            _invalidationsAvoided = d.u64();
            const std::uint64_t sharer_lines = d.u64();
            if (!d.ok() || sharer_lines != _lineSharers.size())
                return fail("core-delta");
            const std::uint64_t patched = d.u64();
            for (std::uint64_t k = 0; k < patched && d.ok(); ++k) {
                const std::uint64_t idx = d.u64();
                const std::uint64_t mask = d.u64();
                if (idx >= _lineSharers.size())
                    return fail("core-delta");
                _lineSharers[static_cast<std::size_t>(idx)] = mask;
            }
            const std::size_t n =
                static_cast<std::size_t>(numProcessors());
            if (!d.done() || _fenced.size() != n ||
                _lastArrival.size() != n || _openSyncRecord.size() != n)
                return fail("core-delta");
            saw_core = true;
            break;
          }
          case snapshot::SectionId::MemoryDelta:
            if (!_memory->decodeDeltaState(d) || !d.done())
                return fail("memory-delta");
            saw_memory = true;
            break;
          case snapshot::SectionId::BusDelta:
            if (!_bus->decodeDeltaState(d) || !d.done())
                return fail("bus-delta");
            saw_bus = true;
            break;
          case snapshot::SectionId::Network:
            if (!_network->decodeState(d) || !d.done())
                return fail("network");
            saw_network = true;
            break;
          case snapshot::SectionId::CacheDelta: {
            if (d.u64() != _caches.size())
                return fail("cache-delta");
            for (auto &cache : _caches)
                if (!cache->decodeDeltaState(d))
                    return fail("cache-delta");
            if (!d.done())
                return fail("cache-delta");
            saw_caches = true;
            break;
          }
          case snapshot::SectionId::Processors: {
            if (d.u64() != _processors.size())
                return fail("processors");
            for (auto &proc : _processors)
                if (!proc->decodeState(d))
                    return fail("processors");
            if (!d.done())
                return fail("processors");
            saw_procs = true;
            break;
          }
          case snapshot::SectionId::Injector:
            if (!_injector)
                return fail("injector (machine has no fault plan)");
            if (!_injector->decodeState(d) || !d.done())
                return fail("injector");
            break;
          case snapshot::SectionId::Watchdog:
            if (!_watchdog)
                return fail("watchdog (machine has no watchdog)");
            if (!_watchdog->decodeState(d) || !d.done())
                return fail("watchdog");
            break;
          default: {
            std::ostringstream oss;
            oss << "unknown delta snapshot section id " << s.id;
            error = oss.str();
            return false;
          }
        }
    }
    if (!saw_core || !saw_memory || !saw_bus || !saw_network ||
        !saw_caches || !saw_procs) {
        error = "delta snapshot is missing a required section";
        return false;
    }
    if (_now != header.cycle) {
        error = "delta header cycle disagrees with machine core";
        return false;
    }
    _sharersUnbounded = false;
    _restoredChainGen = header.generation;
    return true;
}

bool
Machine::restoreChainState(
    const std::vector<std::vector<std::uint8_t>> &chain,
    std::string &error)
{
    if (chain.empty()) {
        error = "empty snapshot chain";
        return false;
    }
    if (!restoreState(chain.front(), error))
        return false;
    for (std::size_t i = 1; i < chain.size(); ++i) {
        if (!applyDeltaState(chain[i], error)) {
            std::ostringstream oss;
            oss << "chain link " << i << ": " << error;
            error = oss.str();
            return false;
        }
    }
    return true;
}

std::string
Machine::describeState() const
{
    std::ostringstream oss;
    for (int p = 0; p < numProcessors(); ++p) {
        const auto &proc = *_processors[static_cast<std::size_t>(p)];
        const auto &unit = _network->unit(p);
        oss << "cpu" << p << ": pc=" << proc.pc()
            << " halted=" << (proc.halted() ? "yes" : "no");
        if (_fenced[static_cast<std::size_t>(p)])
            oss << " (fenced)";
        oss << " barrier=" << barrier::barrierStateName(unit.state())
            << " tag=" << unit.tag() << " epoch=" << unit.epoch()
            << " mask=" << unit.mask().toString() << "\n";
    }

    std::vector<bool> halted(
        static_cast<std::size_t>(numProcessors()));
    for (int p = 0; p < numProcessors(); ++p) {
        halted[static_cast<std::size_t>(p)] =
            _fenced[static_cast<std::size_t>(p)] ||
            _processors[static_cast<std::size_t>(p)]->halted();
    }
    barrier::DeadlockReport report =
        _network->analyzeDeadlock(halted, _now);
    if (report.deadlocked)
        oss << report.toString();
    return oss.str();
}

} // namespace fb::sim
