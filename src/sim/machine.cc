#include "sim/machine.hh"

#include <limits>
#include <map>
#include <sstream>

#include "support/logging.hh"

namespace fb::sim
{

std::uint64_t
RunResult::totalBarrierWait() const
{
    std::uint64_t total = 0;
    for (const auto &p : perProcessor)
        total += p.barrierWaitCycles;
    return total;
}

std::uint64_t
RunResult::maxBarrierWait() const
{
    std::uint64_t best = 0;
    for (const auto &p : perProcessor)
        best = std::max(best, p.barrierWaitCycles);
    return best;
}

/**
 * Per-processor memory port: timing comes from the private cache plus
 * the shared bus; data always comes from shared memory. Stores
 * invalidate the line in every other cache (write-through coherence).
 */
class Machine::Port : public MemoryPort
{
  public:
    Port(Machine &machine, int cpu) : _machine(machine), _cpu(cpu) {}

    std::int64_t
    read(std::size_t addr, std::uint64_t now, std::uint32_t &cycles)
        override
    {
        cycles = latency(addr, now);
        return _machine._memory->read(addr);
    }

    void
    write(std::size_t addr, std::int64_t value, std::uint64_t now,
          std::uint32_t &cycles) override
    {
        cycles = latency(addr, now);
        _machine._memory->write(addr, value);
        for (int p = 0; p < _machine.numProcessors(); ++p) {
            if (p != _cpu)
                _machine._caches[static_cast<std::size_t>(p)]
                    ->invalidate(addr);
        }
    }

  private:
    std::uint32_t
    latency(std::size_t addr, std::uint64_t now)
    {
        auto result =
            _machine._caches[static_cast<std::size_t>(_cpu)]->access(addr);
        if (result.hit)
            return result.cycles;
        std::uint64_t queue = _machine._bus->request(now, addr);
        return result.cycles + static_cast<std::uint32_t>(queue);
    }

    Machine &_machine;
    int _cpu;
};

Machine::Machine(const MachineConfig &config) : _config(config)
{
    FB_ASSERT(config.numProcessors > 0 && config.numProcessors <= 64,
              "processor count must be in [1, 64]");
    _memory = std::make_unique<SharedMemory>(config.memWords);
    _bus = std::make_unique<SharedBus>(config.busServiceCycles,
                                       config.busKind);
    _network = std::make_unique<barrier::BarrierNetwork>(
        config.numProcessors, config.syncLatency);

    _programs.resize(static_cast<std::size_t>(config.numProcessors));
    for (auto &prog : _programs)
        prog.finalize();

    RandomSource master(config.seed);
    for (int p = 0; p < config.numProcessors; ++p) {
        _caches.push_back(std::make_unique<DataCache>(config.cache));
        _ports.push_back(std::make_unique<Port>(*this, p));
        _processors.push_back(std::make_unique<Processor>(
            p, _programs[static_cast<std::size_t>(p)], _network->unit(p),
            *_ports.back(), config.pipelineDepth, config.stall,
            master.split(), config.jitterMean, config.interruptPeriod,
            config.isrEntry, config.issueWidth));
        if (config.recordSyncEvents)
            _processors.back()->setObserver(this);
    }
    if (config.traceBarrierStates) {
        _trace = std::make_unique<BarrierTrace>(config.numProcessors);
    }
    _lastArrival.assign(static_cast<std::size_t>(config.numProcessors), 0);
    _openSyncRecord.assign(static_cast<std::size_t>(config.numProcessors),
                           std::numeric_limits<std::size_t>::max());
}

Machine::~Machine() = default;

void
Machine::loadProgram(int p, isa::Program program)
{
    FB_ASSERT(p >= 0 && p < numProcessors(), "bad processor index");
    FB_ASSERT(program.finalized(), "program must be finalized");
    FB_ASSERT(_now == 0, "cannot load programs after run()");
    _programs[static_cast<std::size_t>(p)] = std::move(program);
}

void
Machine::loadAllPrograms(const isa::Program &program)
{
    for (int p = 0; p < numProcessors(); ++p)
        loadProgram(p, program);
}

Processor &
Machine::processor(int p)
{
    FB_ASSERT(p >= 0 && p < numProcessors(), "bad processor index");
    return *_processors[static_cast<std::size_t>(p)];
}

void
Machine::onArrive(int p, std::uint64_t cycle)
{
    _lastArrival[static_cast<std::size_t>(p)] = cycle;
}

void
Machine::onCross(int p, std::uint64_t cycle)
{
    std::size_t rec = _openSyncRecord[static_cast<std::size_t>(p)];
    if (rec == std::numeric_limits<std::size_t>::max())
        return;
    SyncRecord &record = _syncRecords[rec];
    for (std::size_t i = 0; i < record.members.size(); ++i) {
        if (record.members[i] == p) {
            record.crossings[i] = cycle;
            break;
        }
    }
    _openSyncRecord[static_cast<std::size_t>(p)] =
        std::numeric_limits<std::size_t>::max();
}

RunResult
Machine::run()
{
    RunResult result;
    const int n = numProcessors();

    std::vector<std::uint64_t> episodes_before(static_cast<std::size_t>(n));

    for (;;) {
        bool all_halted = true;
        bool any_progress = false;

        for (int p = 0; p < n; ++p) {
            TickResult tr =
                _processors[static_cast<std::size_t>(p)]->tick(_now);
            if (tr != TickResult::Halted)
                all_halted = false;
            if (tr == TickResult::Progress)
                any_progress = true;
        }

        if (_config.recordSyncEvents) {
            for (int p = 0; p < n; ++p) {
                episodes_before[static_cast<std::size_t>(p)] =
                    _network->unit(p).episodes();
            }
        }

        int delivered = _network->evaluate(_now);
        if (delivered > 0 || _network->deliveryPending())
            any_progress = true;

        if (_config.recordSyncEvents && delivered > 0) {
            // Group the newly synchronized processors by tag; each
            // group is one completed barrier episode.
            std::map<std::uint32_t, std::vector<int>> groups;
            for (int p = 0; p < n; ++p) {
                if (_network->unit(p).episodes() >
                    episodes_before[static_cast<std::size_t>(p)]) {
                    groups[_network->unit(p).tag()].push_back(p);
                }
            }
            for (auto &[tag, members] : groups) {
                SyncRecord record;
                record.cycle = _now;
                record.members = members;
                for (int m : members) {
                    record.arrivals.push_back(
                        _lastArrival[static_cast<std::size_t>(m)]);
                    record.crossings.push_back(
                        std::numeric_limits<std::uint64_t>::max());
                }
                _syncRecords.push_back(std::move(record));
                for (int m : members) {
                    _openSyncRecord[static_cast<std::size_t>(m)] =
                        _syncRecords.size() - 1;
                }
            }
        }

        if (_trace) {
            std::vector<barrier::BarrierState> states;
            std::vector<bool> halted_flags;
            for (int p = 0; p < n; ++p) {
                states.push_back(_network->unit(p).state());
                halted_flags.push_back(
                    _processors[static_cast<std::size_t>(p)]->halted());
            }
            _trace->record(states, halted_flags, delivered > 0);
        }

        if (all_halted)
            break;

        if (!any_progress) {
            result.deadlocked = true;
            result.deadlockInfo = describeState();
            break;
        }

        ++_now;
        if (_now >= _config.maxCycles) {
            result.timedOut = true;
            break;
        }
    }

    result.cycles = _now;
    result.syncEvents = _network->syncEvents();
    result.busRequests = _bus->requests();
    result.busQueueDelay = _bus->totalQueueDelay();
    result.memAccesses = _memory->totalAccesses();
    result.hotSpotAccesses = _memory->hotSpotAccesses();

    for (int p = 0; p < n; ++p) {
        const auto &proc = *_processors[static_cast<std::size_t>(p)];
        const auto &unit = _network->unit(p);
        const auto &cache = *_caches[static_cast<std::size_t>(p)];
        ProcessorStats ps;
        ps.instructions = proc.instructions();
        ps.barrierWaitCycles = proc.barrierWaitCycles();
        ps.contextSwitchCycles = proc.contextSwitchCycles();
        ps.contextSwitches = proc.contextSwitches();
        ps.interruptsTaken = proc.interruptsTaken();
        ps.barrierEpisodes = unit.episodes();
        ps.stalledEpisodes = unit.stalledEpisodes();
        ps.stallCycles = unit.stallCycles();
        ps.cacheHits = cache.hits();
        ps.cacheMisses = cache.misses();
        result.perProcessor.push_back(ps);
    }
    return result;
}

std::string
Machine::checkSafetyProperty() const
{
    for (std::size_t r = 0; r < _syncRecords.size(); ++r) {
        const SyncRecord &record = _syncRecords[r];
        std::uint64_t latest_arrival = 0;
        for (auto a : record.arrivals)
            latest_arrival = std::max(latest_arrival, a);
        for (std::size_t i = 0; i < record.members.size(); ++i) {
            std::uint64_t crossing = record.crossings[i];
            if (crossing == std::numeric_limits<std::uint64_t>::max())
                continue;  // never crossed (halted inside the region)
            if (crossing <= latest_arrival) {
                std::ostringstream oss;
                oss << "safety violation in sync record " << r
                    << ": processor " << record.members[i]
                    << " crossed at cycle " << crossing
                    << " but the latest arrival was at cycle "
                    << latest_arrival;
                return oss.str();
            }
        }
    }
    return "";
}

std::string
Machine::describeState() const
{
    std::ostringstream oss;
    for (int p = 0; p < numProcessors(); ++p) {
        const auto &proc = *_processors[static_cast<std::size_t>(p)];
        const auto &unit = _network->unit(p);
        oss << "cpu" << p << ": pc=" << proc.pc()
            << " halted=" << (proc.halted() ? "yes" : "no")
            << " barrier=" << barrier::barrierStateName(unit.state())
            << " tag=" << unit.tag() << " mask=" << unit.mask().toString()
            << "\n";
    }
    return oss.str();
}

} // namespace fb::sim
