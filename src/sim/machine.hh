/**
 * @file
 * The simulated multiprocessor: processors, caches, bus, shared
 * memory, and the fuzzy-barrier network, advanced on a common clock.
 */

#ifndef FB_SIM_MACHINE_HH
#define FB_SIM_MACHINE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "barrier/network.hh"
#include "fault/injector.hh"
#include "fault/watchdog.hh"
#include "isa/program.hh"
#include "sim/bus.hh"
#include "sim/cache.hh"
#include "sim/config.hh"
#include "sim/memory.hh"
#include "sim/processor.hh"
#include "sim/trace.hh"
#include "snapshot/format.hh"

namespace fb::sim
{

/** Everything measured about one simulated processor. */
struct ProcessorStats
{
    std::uint64_t instructions = 0;
    std::uint64_t barrierWaitCycles = 0;
    std::uint64_t contextSwitchCycles = 0;
    std::uint64_t contextSwitches = 0;
    std::uint64_t interruptsTaken = 0;
    std::uint64_t barrierEpisodes = 0;
    std::uint64_t stalledEpisodes = 0;
    std::uint64_t stallCycles = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
};

/**
 * One application of the epoch/mask-shrink recovery protocol: the
 * watchdog declared @ref deadProc dead at @ref cycle, and every
 * survivor still synchronizing with it dropped its mask bit and
 * advanced to the next epoch.
 */
struct RecoveryEvent
{
    std::uint64_t cycle = 0;
    int deadProc = -1;
    std::vector<int> survivors;
};

/** Result of a whole-machine run. */
struct RunResult
{
    std::uint64_t cycles = 0;          ///< total cycles simulated
    bool deadlocked = false;           ///< run ended in barrier deadlock
    bool timedOut = false;             ///< hit the maxCycles guard
    std::string deadlockInfo;          ///< per-processor state dump
    std::vector<ProcessorStats> perProcessor;
    std::uint64_t syncEvents = 0;      ///< completed barrier episodes
    /** Sync records rotated out by MachineConfig::syncRecordWindow. */
    std::uint64_t syncRecordsDropped = 0;
    std::uint64_t busRequests = 0;
    std::uint64_t busQueueDelay = 0;
    std::uint64_t memAccesses = 0;
    std::uint64_t hotSpotAccesses = 0;

    // Write-through coherence filter (see Machine::Port::write):
    // invalidations actually delivered to caches holding the line,
    // and the broadcast invalidations the sharer mask avoided.
    std::uint64_t invalidationsSent = 0;
    std::uint64_t invalidationsAvoided = 0;

    // Fault injection / recovery (all zero on fault-free runs).
    std::vector<RecoveryEvent> recoveries;
    std::vector<int> deadDeclared;     ///< processors fenced off
    fault::InjectorStats faultStats;
    fault::WatchdogStats watchdogStats;
    std::uint64_t correctedFaults = 0; ///< ECC scrub corrections
    /** First fault-safety (membership) violation, or empty. */
    std::string membershipViolation;

    // Staged-checkpoint accounting (all zero unless a staged sink was
    // installed). Deliberately excluded from the resume-equivalence
    // comparison: checkpointing must never change what a run computes,
    // only how its state is persisted.
    std::uint64_t checkpointsFull = 0;  ///< full captures taken
    std::uint64_t checkpointsDelta = 0; ///< delta captures taken
    std::uint64_t checkpointDegradations = 0; ///< sink degradation events
    /** Last degradation note reported by the staged sink, or empty. */
    std::string checkpointDegradation;

    /** True if @p p was fenced off by the recovery protocol. */
    bool isDead(int p) const
    {
        for (int d : deadDeclared)
            if (d == p)
                return true;
        return false;
    }

    /** Sum of barrierWaitCycles over all processors. */
    std::uint64_t totalBarrierWait() const;

    /** Max barrierWaitCycles of any processor. */
    std::uint64_t maxBarrierWait() const;
};

/**
 * A record of one completed synchronization: used by the safety
 * oracle to verify the paper's correctness condition (section 2):
 * crossing may only happen after every member has arrived.
 */
struct SyncRecord
{
    std::uint64_t cycle;                 ///< cycle sync was delivered
    std::vector<int> members;            ///< processors that synced
    std::vector<std::uint64_t> arrivals; ///< per-member arrival cycles
    std::vector<std::uint64_t> crossings;///< per-member crossing cycles
                                         ///< (UINT64_MAX = never crossed)
};

/**
 * Shard rendezvous hook for exec::ShardedMachine (INTERNALS section
 * 17). When a driver is installed, run() replaces the fast-forward
 * skip with a window dispatch: advanceWindow(stop) must make every
 * shard call advanceShardRange(first, last, stop) for its processor
 * range (disjoint ranges, any threading) and return only when all
 * shards are done. The machine itself never spawns threads.
 */
class ShardWindowDriver
{
  public:
    virtual ~ShardWindowDriver() = default;

    /** Advance all shards through private ticks up to @p stop. */
    virtual void advanceWindow(std::uint64_t stop) = 0;
};

/**
 * The whole machine. Construct, load one Program per processor,
 * optionally poke memory / registers, then run().
 */
class Machine : public ExecutionObserver
{
  public:
    explicit Machine(const MachineConfig &config);
    ~Machine() override;

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    /**
     * Structural shape key of a config: the inputs that size the
     * machine's long-lived arrays (processor count, memory size,
     * cache model and geometry). Two configs with equal keys can
     * share one Machine via reset(); everything else (seed, timing,
     * stall model, fault plan, ...) is a reset-time parameter.
     */
    static std::uint64_t structuralKey(const MachineConfig &config);

    /**
     * Reinitialize for @p config — observably equivalent to
     * destroying this machine and constructing Machine(config), but
     * reusing every large allocation (memory slabs, cache arrays,
     * sharer masks, scratch vectors). Requires structuralKey(config)
     * == structuralKey of the current config. Cost is proportional
     * to the state the previous run actually touched, not to the
     * machine size. Programs revert to empty; the checkpoint sink
     * and any observer/trace state are cleared per @p config.
     */
    void reset(const MachineConfig &config);

    /**
     * Load @p program into processor @p p. Must precede run(). With
     * MachineConfig::predecode the program's threaded-code twin is
     * installed too: pass a shared @p decoded block (it must hash to
     * this exact program — asserted) to reuse a cached decode, or
     * leave it null to decode here. A null @p decoded with predecode
     * off leaves the per-cycle interpreter alone.
     */
    void loadProgram(int p, isa::Program program,
                     std::shared_ptr<const DecodedProgram> decoded =
                         nullptr);

    /** Load the same program into every processor (one shared decode). */
    void loadAllPrograms(const isa::Program &program);

    /** The threaded-code block installed for processor @p p (null
     * when predecode is off or no program is loaded). Exposed so
     * tests can verify cached blocks are shared, not re-decoded. */
    std::shared_ptr<const DecodedProgram> decodedProgram(int p) const;

    /** Access shared memory for setup/inspection. */
    SharedMemory &memory() { return *_memory; }

    /** Access processor @p p (register setup, inspection). */
    Processor &processor(int p);

    /** Access the barrier network (mask/tag setup from the host). */
    barrier::BarrierNetwork &network() { return *_network; }

    /** Number of processors. */
    int numProcessors() const { return _config.numProcessors; }

    /** The configuration this machine currently runs under. */
    const MachineConfig &config() const { return _config; }

    /**
     * Run until every processor halts, a deadlock is detected, or the
     * cycle guard trips. With a @p driver (installed by
     * exec::ShardedMachine), processors additionally run ahead of the
     * global clock through provably private ticks, bounded by
     * MachineConfig::shardQuantum; results are byte-identical either
     * way.
     */
    RunResult run(ShardWindowDriver *driver = nullptr);

    /**
     * Shard worker entry: advance processors [@p first, @p last)
     * through consecutive private ticks up to (excluding) cycle
     * @p stop. Only called from ShardWindowDriver::advanceWindow(),
     * on disjoint ranges; touches nothing outside the range's
     * processors and their skew cursors.
     */
    void advanceShardRange(int first, int last, std::uint64_t stop);

    /** Barrier-state trace (non-null only when traceBarrierStates). */
    const BarrierTrace *trace() const { return _trace.get(); }

    /** Sync records collected during run() (if enabled in config). */
    const std::vector<SyncRecord> &syncRecords() const
    {
        return _syncRecords;
    }

    /**
     * Verify the fuzzy-barrier safety condition over the collected
     * sync records: every member's crossing cycle is strictly greater
     * than every member's arrival cycle. Returns a description of the
     * first violation or an empty string when the property holds.
     */
    std::string checkSafetyProperty() const;

    // ExecutionObserver interface
    void onArrive(int p, std::uint64_t cycle) override;
    void onCross(int p, std::uint64_t cycle) override;

    /**
     * Receives each periodic checkpoint: the cycle it was captured at
     * and the assembled snapshot bytes. Returning false uninstalls the
     * sink (no further checkpoints are taken this run).
     */
    using CheckpointSink =
        std::function<bool(std::uint64_t cycle,
                           const std::vector<std::uint8_t> &bytes)>;

    /** Install the checkpoint sink (see MachineConfig::
     * checkpointEveryCycles). Must precede run(). Uninstalls any
     * staged sink. */
    void setCheckpointSink(CheckpointSink sink)
    {
        _checkpointSink = std::move(sink);
        _stagedSink = nullptr;
    }

    /**
     * Staged-checkpoint handshake: the sink's verdict on a capture it
     * was handed, returned synchronously while the capture may still
     * be queued for background persistence.
     */
    struct CheckpointAck
    {
        /** false: uninstall the sink, take no further checkpoints. */
        bool keep = true;
        /**
         * true: the next capture must be a full re-base. An
         * asynchronous writer sets this after it failed to persist an
         * earlier capture — the on-disk chain head is then stale, and
         * a delta against the in-memory predecessor would name a
         * snapshot that never reached the store.
         */
        bool forceFull = false;
        /** false: stop producing deltas; every later capture is full
         *  (degradation ladder, INTERNALS section 18). */
        bool deltasOk = true;
        /** Non-empty: a degradation to record in RunResult. */
        std::string degradation;
    };

    /**
     * Receives each periodic capture as unassembled sections plus the
     * chain-linked header (generation/baseFull/prev filled in). The
     * sink owns both values — it may hand them to a background writer
     * and return immediately; the machine never touches them again.
     */
    using StagedCheckpointSink = std::function<CheckpointAck(
        snapshot::SnapshotHeader header,
        std::vector<snapshot::Section> sections)>;

    /**
     * Install the staged (delta-capable) checkpoint sink and reset the
     * chain bookkeeping: the first capture is full, then deltas until
     * MachineConfig::checkpointRebaseEvery forces a re-base.
     * Uninstalls any legacy byte sink. Must precede run().
     */
    void setStagedCheckpointSink(StagedCheckpointSink sink);

    /**
     * FNV-1a fingerprint over every result-relevant configuration
     * input: all MachineConfig fields except checkpointEveryCycles
     * (which never changes results), the fault plan, the watchdog
     * parameters, and every loaded program's instructions and barrier
     * ids. A snapshot only restores into a machine with an identical
     * fingerprint, so state can never silently meet the wrong config
     * or the wrong code.
     */
    std::uint64_t configFingerprint() const;

    /**
     * Capture the complete mutable machine state as a validated
     * snapshot byte stream (see src/snapshot/). @p generation is
     * embedded in the header for the store's stale-snapshot check.
     * Not supported while barrier-state tracing is enabled.
     */
    std::vector<std::uint8_t>
    saveState(std::uint64_t generation = 0) const;

    /**
     * Restore state captured by saveState() on an identically
     * configured machine with identical programs loaded (enforced via
     * the config fingerprint). On success the machine continues from
     * the captured cycle: run() produces exactly the cycles, stats and
     * verdict the uninterrupted run would have produced. On failure
     * returns false with a diagnostic in @p error; the machine must
     * then be discarded (state may be partially overwritten).
     */
    bool restoreState(const std::vector<std::uint8_t> &bytes,
                      std::string &error);

    /**
     * Apply one delta snapshot on top of the current state, which must
     * be exactly the state the delta was captured against (its prev
     * link). Same fingerprint rules as restoreState(); on failure the
     * machine must be discarded.
     */
    bool applyDeltaState(const std::vector<std::uint8_t> &bytes,
                         std::string &error);

    /**
     * Restore a full chain as returned by SnapshotStore::
     * loadLatestChain(): chain[0] must be a full snapshot, every later
     * element a delta against its predecessor.
     */
    bool restoreChainState(
        const std::vector<std::vector<std::uint8_t>> &chain,
        std::string &error);

  private:
    class Port;

    std::string describeState() const;

    /**
     * Fast-forward: the earliest cycle after _now at which the loop
     * body does anything beyond fixed wait accounting — the minimum
     * over every active processor's nextEventCycle(), the network's
     * pending delivery, the injector's next action, and the
     * watchdog's next deadline. UINT64_MAX means no future event is
     * scheduled (the next cycle decides deadlock / completion, so the
     * caller must single-step, never skip).
     */
    std::uint64_t nextInterestingCycle() const;

    /** Fence the dead processors and run mask-shrink on survivors. */
    void applyRecovery(const std::vector<int> &dead, std::uint64_t now);

    /**
     * Fault-safety (membership) oracle, evaluated at delivery time:
     * every live, same-tag, same-epoch processor in a member's mask
     * must itself be part of the delivered group. Returns a
     * description of the first violation or empty.
     */
    std::string checkMembership(const std::vector<int> &members,
                                std::uint64_t now) const;

    MachineConfig _config;
    std::unique_ptr<SharedMemory> _memory;
    std::unique_ptr<SharedBus> _bus;
    std::unique_ptr<barrier::BarrierNetwork> _network;
    std::vector<std::unique_ptr<DataCache>> _caches;
    std::vector<std::unique_ptr<Port>> _ports;
    std::vector<isa::Program> _programs;
    /** Threaded-code twins of _programs (null slots when predecode is
     * off; shareable across machines via exec::ProgramCache). */
    std::vector<std::shared_ptr<const DecodedProgram>> _decodedPrograms;
    std::vector<std::unique_ptr<Processor>> _processors;
    std::uint64_t _now = 0;
    std::unique_ptr<BarrierTrace> _trace;

    // Fault injection and recovery (null when no faults configured).
    std::unique_ptr<fault::FaultInjector> _injector;
    std::unique_ptr<fault::BarrierWatchdog> _watchdog;
    /** Processors fenced off by the recovery protocol. */
    std::vector<bool> _fenced;
    std::vector<RecoveryEvent> _recoveries;
    std::vector<int> _deadDeclared;
    /** First membership violation observed (survives save/restore). */
    std::string _membershipViolation;

    /** Build the full-snapshot section list (saveState's body). */
    std::vector<snapshot::Section> buildFullSections() const;

    /** Build the delta section list for the open epoch. */
    std::vector<snapshot::Section> buildDeltaSections() const;

    /** Open (or roll over) the delta epoch on every component. */
    void beginDeltaEpoch();

    /** Close the delta epoch on every component. */
    void endDeltaEpoch();

    /** Capture and hand one checkpoint to the staged sink. */
    void takeStagedCheckpoint(std::uint64_t generation);

    /** Epoch hook for the per-line sharer masks (Port mutations). */
    void markSharerEpoch(std::size_t line)
    {
        if (_epochCoreTracking && !_epochSharerDirty[line]) {
            _epochSharerDirty[line] = true;
            _epochSharerLines.push_back(line);
        }
    }

    /** Periodic checkpoint consumer (null = checkpointing off). */
    CheckpointSink _checkpointSink;

    /** Staged (delta-capable) checkpoint consumer. */
    StagedCheckpointSink _stagedSink;

    // Delta-chain bookkeeping for the staged sink (reset at install).
    bool _deltaEpochOpen = false;  ///< a capture opened an epoch
    bool _deltasDisabled = false;  ///< ladder: full snapshots only
    bool _forceFullNext = false;   ///< sink requested a re-base
    std::uint64_t _checkpointSeq = 0;     ///< captures since install
    std::uint64_t _chainBaseGen = 0;      ///< open chain's anchor
    std::uint64_t _lastCheckpointGen = 0; ///< prev link for deltas
    std::uint64_t _restoredChainGen = 0;  ///< last restored generation
    std::uint64_t _checkpointsFull = 0;
    std::uint64_t _checkpointsDelta = 0;
    std::uint64_t _checkpointDegradations = 0;
    std::string _checkpointDegradation;

    // Core delta-epoch bookkeeping (not serialized): sharer lines
    // mutated since the last capture, and the index of the first sync
    // record that was still open (mutable) when the epoch began —
    // records before it are immutable, so a delta only re-encodes
    // [_epochSyncPatchFrom, end).
    bool _epochCoreTracking = false;
    std::vector<bool> _epochSharerDirty;
    std::vector<std::size_t> _epochSharerLines;
    std::size_t _epochSyncPatchFrom = 0;

    // Oracle bookkeeping. With MachineConfig::syncRecordWindow the
    // record trail is a rotating window: _syncRecords holds the
    // retained suffix and _syncRecordsDropped counts the rotated-out
    // prefix, so _openSyncRecord / _epochSyncPatchFrom keep using
    // absolute indices (vector position = absolute - dropped).
    std::vector<std::uint64_t> _lastArrival;
    std::vector<std::size_t> _openSyncRecord;
    std::vector<SyncRecord> _syncRecords;
    std::uint64_t _syncRecordsDropped = 0;

    /** Rotate records beyond the window out of _syncRecords, never
     * touching open records or the current delta epoch's patch tail. */
    void pruneSyncRecords();

    // Run-loop scratch (hoisted per-cycle heap allocations).
    /** Processors still ticking: not fenced, tick() != Halted. Kept
     * in ascending order — tick order is architectural (FAA
     * atomicity, bus request ordering). */
    std::vector<int> _active;
    /** (tag, processor) pairs of one delivery, for episode grouping. */
    std::vector<std::pair<std::uint32_t, int>> _groupScratch;
    /**
     * Sharded-run skew cursors: _procNext[p] is the next global cycle
     * whose tick processor p still owes. A processor with
     * _procNext[p] > _now ran ahead through private ticks; the
     * coordinator counts it as alive-and-progressing and skips its
     * tick. All zero (and ignored) in sequential runs; not part of
     * snapshots — windows never span a checkpoint boundary, so every
     * processor is aligned whenever state is captured.
     */
    std::vector<std::uint64_t> _procNext;
    std::vector<barrier::BarrierState> _traceStates;
    std::vector<bool> _traceHalted;
    /** Per-processor halted-or-fenced flags handed to the watchdog.
     * Maintained incrementally (halt edges, kills, recovery fences)
     * so the per-cycle watchdog block is O(active), not O(n). */
    std::vector<bool> _wdHalted;

    /**
     * True while a shard window is being dispatched. Port::read routes
     * through the deferred-statistics path during a window: the value
     * comes from a race-free peek, the timing from the (asserted) own-
     * cache hit, and the shared-memory statistics are queued per
     * processor and replayed by flushDeferredReads() when the window
     * closes. Written by the coordinator before the window's release
     * barrier, cleared after the join, so shard threads read it with
     * happens-before.
     */
    bool _windowActive = false;
    /** Addresses read on the private fast path this window, per
     * processor (each slot touched only by its owning shard). */
    std::vector<std::vector<std::size_t>> _deferredReads;

    /**
     * Replay the statistics of every private-path load performed in
     * the window just closed, in processor order: memory access
     * counts, sharer-mask bits and the sharer delta-epoch marks. All
     * of these are order-insensitive (sums, idempotent bit-sets, and
     * sorted-at-encode page/line lists), so the replay is byte-
     * identical to the sequential interleaving.
     */
    void flushDeferredReads();

    /**
     * Earliest future cycle at which processor @p q could execute a
     * store (or any globally visible action): its skew cursor when
     * running, or its barrier wake-up bound when blocked at a barrier.
     * Private loads of other processors are admitted strictly below
     * the minimum of these bounds.
     */
    std::uint64_t writeBoundFor(int q) const;

    /** Publish per-processor private-read horizons for a window
     * dispatch (min over the other processors' writeBoundFor()). */
    void computePrivateReadHorizons();

    // Per-line sharer masks for the write-through coherence filter
    // (bit p = processor p's cache may hold the line; conservative
    // superset, reset to the writer on every store). Empty when the
    // cache model is disabled.
    std::vector<std::uint64_t> _lineSharers;
    std::uint64_t _invalidationsSent = 0;
    std::uint64_t _invalidationsAvoided = 0;

    /**
     * reset() normally bounds the sharer-mask zeroing by the memory
     * pages the run touched (every sharer-setting access also lands
     * in the access stats). A restoreState() that fails partway can
     * leave sharers whose pages the current stats no longer cover;
     * this flag forces the next reset() to take the full O(lines)
     * clear instead.
     */
    bool _sharersUnbounded = false;
};

} // namespace fb::sim

#endif // FB_SIM_MACHINE_HH
