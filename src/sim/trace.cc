#include "sim/trace.hh"

#include <sstream>

#include "support/logging.hh"

namespace fb::sim
{

char
BarrierTrace::symbolFor(barrier::BarrierState state, bool halted)
{
    if (halted)
        return symHalted;
    switch (state) {
      case barrier::BarrierState::NonBarrier: return symNonBarrier;
      case barrier::BarrierState::Ready: return symReady;
      case barrier::BarrierState::Synced: return symSynced;
      case barrier::BarrierState::Stalled: return symStalled;
    }
    return '?';
}

char
BarrierTrace::worst(char a, char b)
{
    auto rank = [](char c) {
        switch (c) {
          case symStalled: return 4;
          case symReady: return 3;
          case symSynced: return 2;
          case symNonBarrier: return 1;
          default: return 0;
        }
    };
    return rank(a) >= rank(b) ? a : b;
}

void
BarrierTrace::record(const std::vector<barrier::BarrierState> &states,
                     const std::vector<bool> &halted, bool sync_delivered)
{
    FB_ASSERT(states.size() == static_cast<std::size_t>(_numProcessors),
              "state vector size mismatch");
    if (_rows.empty())
        _rows.resize(static_cast<std::size_t>(_numProcessors));
    for (int p = 0; p < _numProcessors; ++p) {
        _rows[static_cast<std::size_t>(p)].push_back(
            symbolFor(states[static_cast<std::size_t>(p)],
                      halted[static_cast<std::size_t>(p)]));
    }
    _syncMarks.push_back(sync_delivered);
}

std::string
BarrierTrace::render(std::size_t max_width) const
{
    std::ostringstream oss;
    const std::size_t total = cycles();
    if (total == 0)
        return "(empty trace)\n";
    FB_ASSERT(max_width > 0, "max_width must be positive");
    const std::size_t bucket = (total + max_width - 1) / max_width;
    const std::size_t width = (total + bucket - 1) / bucket;

    oss << "barrier timeline (" << total << " cycles, " << bucket
        << " cycle(s)/column):\n";
    oss << "  legend: '.' non-barrier  'r' in region (awaiting sync)  "
           "'s' in region (synced)\n          '#' stalled  ' ' halted  "
           "'|' group synchronization\n";
    for (int p = 0; p < _numProcessors; ++p) {
        const std::string &row = _rows[static_cast<std::size_t>(p)];
        oss << "  cpu" << p << (p < 10 ? " " : "") << "|";
        for (std::size_t b = 0; b < width; ++b) {
            char c = symHalted;
            for (std::size_t k = b * bucket;
                 k < std::min(total, (b + 1) * bucket); ++k)
                c = worst(c, row[k]);
            oss << c;
        }
        oss << "|\n";
    }
    oss << "  sync " << "|";
    for (std::size_t b = 0; b < width; ++b) {
        bool any = false;
        for (std::size_t k = b * bucket;
             k < std::min(total, (b + 1) * bucket); ++k)
            any = any || _syncMarks[k];
        oss << (any ? '|' : ' ');
    }
    oss << "|\n";
    return oss.str();
}

} // namespace fb::sim
