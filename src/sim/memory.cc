#include "sim/memory.hh"

#include <algorithm>

#include "support/logging.hh"

namespace fb::sim
{

SharedMemory::SharedMemory(std::size_t words) : _words(words, 0)
{
    FB_ASSERT(words > 0, "memory must have at least one word");
    const std::size_t pages = (words + pageWords - 1) / pageWords;
    _countSlot.assign(pages, 0);
    _statsDirty.assign(pages, false);
    _contentDirty.assign(pages, false);
}

std::int64_t
SharedMemory::read(std::size_t addr)
{
    FB_ASSERT(addr < _words.size(), "load from out-of-range address "
                                        << addr);
    touch(addr);
    return _words[addr];
}

void
SharedMemory::write(std::size_t addr, std::int64_t value)
{
    FB_ASSERT(addr < _words.size(), "store to out-of-range address "
                                        << addr);
    touch(addr);
    markWritten(addr);
    _words[addr] = value;
}

void
SharedMemory::recordAccess(std::size_t addr)
{
    FB_ASSERT(addr < _words.size(), "access record for out-of-range "
                                    "address "
                                        << addr);
    touch(addr);
}

std::int64_t
SharedMemory::peek(std::size_t addr) const
{
    FB_ASSERT(addr < _words.size(), "peek of out-of-range address "
                                        << addr);
    return _words[addr];
}

void
SharedMemory::poke(std::size_t addr, std::int64_t value)
{
    FB_ASSERT(addr < _words.size(), "poke of out-of-range address "
                                        << addr);
    markWritten(addr);
    _words[addr] = value;
}

std::uint64_t *
SharedMemory::countSlab(std::size_t page)
{
    std::uint32_t slot = _countSlot[page];
    if (slot == 0) {
        _countSlabs.resize(_countSlabs.size() + pageWords, 0);
        slot = static_cast<std::uint32_t>(_countSlabs.size() / pageWords);
        _countSlot[page] = slot;
    }
    return &_countSlabs[(slot - 1) * pageWords];
}

const std::uint64_t *
SharedMemory::countSlabIfAny(std::size_t page) const
{
    const std::uint32_t slot = _countSlot[page];
    return slot == 0 ? nullptr : &_countSlabs[(slot - 1) * pageWords];
}

void
SharedMemory::touch(std::size_t addr)
{
    ++_totalAccesses;
    const std::size_t page = addr / pageWords;
    std::uint64_t *slab = countSlab(page);
    if (!_statsDirty[page]) {
        _statsDirty[page] = true;
        _statsPages.push_back(page);
    }
    if (_epochTracking && !_epochStatsDirty[page]) {
        _epochStatsDirty[page] = true;
        _epochStatsPages.push_back(page);
    }
    ++slab[addr % pageWords];
}

void
SharedMemory::markWritten(std::size_t addr)
{
    const std::size_t page = addr / pageWords;
    if (!_contentDirty[page]) {
        _contentDirty[page] = true;
        _contentPages.push_back(page);
    }
    if (_epochTracking && !_epochContentDirty[page]) {
        _epochContentDirty[page] = true;
        _epochContentPages.push_back(page);
    }
}

std::uint64_t
SharedMemory::hotSpotAccesses() const
{
    std::uint64_t best = 0;
    for (std::size_t page : _statsPages) {
        const std::uint64_t *slab = countSlabIfAny(page);
        for (std::size_t i = 0; i < pageWords; ++i)
            if (slab[i] > best)
                best = slab[i];
    }
    return best;
}

std::size_t
SharedMemory::hotSpotAddress() const
{
    // Scan pages in ascending address order so ties resolve to the
    // lowest address deterministically.
    std::vector<std::size_t> pages(_statsPages);
    std::sort(pages.begin(), pages.end());
    std::size_t best_addr = 0;
    std::uint64_t best = 0;
    for (std::size_t page : pages) {
        const std::uint64_t *slab = countSlabIfAny(page);
        for (std::size_t i = 0; i < pageWords; ++i) {
            if (slab[i] > best) {
                best = slab[i];
                best_addr = page * pageWords + i;
            }
        }
    }
    return best_addr;
}

void
SharedMemory::resetStats()
{
    for (std::size_t page : _statsPages) {
        std::uint64_t *slab = countSlab(page);
        std::fill(slab, slab + pageWords, 0);
        _statsDirty[page] = false;
    }
    _statsPages.clear();
    _totalAccesses = 0;
}

void
SharedMemory::resetContents()
{
    for (std::size_t page : _contentPages) {
        const std::size_t begin = page * pageWords;
        const std::size_t end = std::min(begin + pageWords, _words.size());
        std::fill(_words.begin() + begin, _words.begin() + end, 0);
        _contentDirty[page] = false;
    }
    _contentPages.clear();
}

void
SharedMemory::encodeState(snapshot::Encoder &e) const
{
    e.u64(_words.size());

    // Dirty pages: any page holding a nonzero word. Nonzero words
    // only exist on content-dirty pages (memory starts zeroed and
    // every store marks its page), so scanning the written set is
    // equivalent to scanning the whole array.
    std::vector<std::size_t> written(_contentPages);
    std::sort(written.begin(), written.end());
    std::vector<std::size_t> dirty;
    for (std::size_t p : written) {
        const std::size_t begin = p * pageWords;
        const std::size_t end = std::min(begin + pageWords, _words.size());
        for (std::size_t i = begin; i < end; ++i) {
            if (_words[i] != 0) {
                dirty.push_back(p);
                break;
            }
        }
    }
    e.u64(dirty.size());
    for (std::size_t p : dirty) {
        const std::size_t begin = p * pageWords;
        const std::size_t end = std::min(begin + pageWords, _words.size());
        e.u64(p);
        e.u64(end - begin);
        for (std::size_t i = begin; i < end; ++i)
            e.i64(_words[i]);
    }

    // Access counts in ascending address order (deterministic bytes,
    // same stream the old sorted-map encoding produced).
    std::vector<std::size_t> touched(_statsPages);
    std::sort(touched.begin(), touched.end());
    std::uint64_t entries = 0;
    for (std::size_t page : touched) {
        const std::uint64_t *slab = countSlabIfAny(page);
        for (std::size_t i = 0; i < pageWords; ++i)
            if (slab[i] != 0)
                ++entries;
    }
    e.u64(entries);
    for (std::size_t page : touched) {
        const std::uint64_t *slab = countSlabIfAny(page);
        for (std::size_t i = 0; i < pageWords; ++i) {
            if (slab[i] != 0) {
                e.u64(page * pageWords + i);
                e.u64(slab[i]);
            }
        }
    }
    e.u64(_totalAccesses);
}

void
SharedMemory::beginDeltaEpoch()
{
    for (std::size_t page : _epochStatsPages)
        _epochStatsDirty[page] = false;
    _epochStatsPages.clear();
    for (std::size_t page : _epochContentPages)
        _epochContentDirty[page] = false;
    _epochContentPages.clear();
    if (!_epochTracking) {
        _epochTracking = true;
        const std::size_t pages = _statsDirty.size();
        _epochStatsDirty.assign(pages, false);
        _epochContentDirty.assign(pages, false);
    }
}

void
SharedMemory::endDeltaEpoch()
{
    if (!_epochTracking)
        return;
    _epochTracking = false;
    for (std::size_t page : _epochStatsPages)
        _epochStatsDirty[page] = false;
    _epochStatsPages.clear();
    for (std::size_t page : _epochContentPages)
        _epochContentDirty[page] = false;
    _epochContentPages.clear();
}

void
SharedMemory::encodeDeltaState(snapshot::Encoder &e) const
{
    e.u64(_words.size());

    // Written pages in full, absolutely: a word stored back to zero
    // this epoch must overwrite the base's nonzero value on apply, so
    // unlike the full encoding there is no nonzero-only filter.
    std::vector<std::size_t> written(_epochContentPages);
    std::sort(written.begin(), written.end());
    e.u64(written.size());
    for (std::size_t p : written) {
        const std::size_t begin = p * pageWords;
        const std::size_t end = std::min(begin + pageWords, _words.size());
        e.u64(p);
        e.u64(end - begin);
        for (std::size_t i = begin; i < end; ++i)
            e.i64(_words[i]);
    }

    // Stats-touched pages: the page list, then every nonzero count on
    // those pages (absolute values). Counts are monotonic, so a count
    // that was nonzero at the epoch start is still nonzero here and
    // is re-listed; apply therefore zeroes each listed page first and
    // sets exactly these entries.
    std::vector<std::size_t> touched(_epochStatsPages);
    std::sort(touched.begin(), touched.end());
    e.u64(touched.size());
    for (std::size_t p : touched)
        e.u64(p);
    std::uint64_t entries = 0;
    for (std::size_t page : touched) {
        const std::uint64_t *slab = countSlabIfAny(page);
        if (slab == nullptr)
            continue;
        for (std::size_t i = 0; i < pageWords; ++i)
            if (slab[i] != 0)
                ++entries;
    }
    e.u64(entries);
    for (std::size_t page : touched) {
        const std::uint64_t *slab = countSlabIfAny(page);
        if (slab == nullptr)
            continue;
        for (std::size_t i = 0; i < pageWords; ++i) {
            if (slab[i] != 0) {
                e.u64(page * pageWords + i);
                e.u64(slab[i]);
            }
        }
    }
    e.u64(_totalAccesses);
}

bool
SharedMemory::decodeDeltaState(snapshot::Decoder &d)
{
    const std::uint64_t words = d.u64();
    if (!d.ok() || words != _words.size())
        return false;

    const std::uint64_t dirty = d.u64();
    for (std::uint64_t k = 0; k < dirty; ++k) {
        const std::uint64_t page = d.u64();
        const std::uint64_t count = d.u64();
        const std::uint64_t begin = page * pageWords;
        if (!d.ok() || begin + count > _words.size() || count > pageWords)
            return false;
        markWritten(static_cast<std::size_t>(begin));
        for (std::uint64_t i = 0; i < count; ++i)
            _words[static_cast<std::size_t>(begin + i)] = d.i64();
    }

    const std::uint64_t touched = d.u64();
    for (std::uint64_t k = 0; k < touched; ++k) {
        const std::uint64_t page = d.u64();
        if (!d.ok() || page * pageWords >= _words.size())
            return false;
        std::uint64_t *slab = countSlab(static_cast<std::size_t>(page));
        std::fill(slab, slab + pageWords, 0);
        if (!_statsDirty[static_cast<std::size_t>(page)]) {
            _statsDirty[static_cast<std::size_t>(page)] = true;
            _statsPages.push_back(static_cast<std::size_t>(page));
        }
    }
    const std::uint64_t entries = d.u64();
    for (std::uint64_t k = 0; k < entries; ++k) {
        const std::uint64_t addr = d.u64();
        const std::uint64_t count = d.u64();
        if (!d.ok() || addr >= _words.size())
            return false;
        const std::size_t page = static_cast<std::size_t>(addr) / pageWords;
        std::uint64_t *slab = countSlab(page);
        if (!_statsDirty[page]) {
            _statsDirty[page] = true;
            _statsPages.push_back(page);
        }
        slab[static_cast<std::size_t>(addr) % pageWords] = count;
    }
    _totalAccesses = d.u64();
    return d.ok();
}

bool
SharedMemory::decodeState(snapshot::Decoder &d)
{
    const std::uint64_t words = d.u64();
    if (!d.ok() || words != _words.size())
        return false;
    resetContents();

    const std::uint64_t dirty = d.u64();
    for (std::uint64_t k = 0; k < dirty; ++k) {
        const std::uint64_t page = d.u64();
        const std::uint64_t count = d.u64();
        const std::uint64_t begin = page * pageWords;
        if (!d.ok() || begin + count > _words.size() || count > pageWords)
            return false;
        markWritten(static_cast<std::size_t>(begin));
        for (std::uint64_t i = 0; i < count; ++i)
            _words[static_cast<std::size_t>(begin + i)] = d.i64();
    }

    resetStats();
    const std::uint64_t entries = d.u64();
    for (std::uint64_t k = 0; k < entries; ++k) {
        const std::uint64_t addr = d.u64();
        const std::uint64_t count = d.u64();
        if (!d.ok() || addr >= _words.size())
            return false;
        const std::size_t page = static_cast<std::size_t>(addr) / pageWords;
        std::uint64_t *slab = countSlab(page);
        if (!_statsDirty[page]) {
            _statsDirty[page] = true;
            _statsPages.push_back(page);
        }
        slab[static_cast<std::size_t>(addr) % pageWords] = count;
    }
    _totalAccesses = d.u64();
    return d.ok();
}

} // namespace fb::sim
