#include "sim/memory.hh"

#include "support/logging.hh"

namespace fb::sim
{

SharedMemory::SharedMemory(std::size_t words) : _words(words, 0)
{
    FB_ASSERT(words > 0, "memory must have at least one word");
}

std::int64_t
SharedMemory::read(std::size_t addr)
{
    FB_ASSERT(addr < _words.size(), "load from out-of-range address "
                                        << addr);
    touch(addr);
    return _words[addr];
}

void
SharedMemory::write(std::size_t addr, std::int64_t value)
{
    FB_ASSERT(addr < _words.size(), "store to out-of-range address "
                                        << addr);
    touch(addr);
    _words[addr] = value;
}

std::int64_t
SharedMemory::peek(std::size_t addr) const
{
    FB_ASSERT(addr < _words.size(), "peek of out-of-range address "
                                        << addr);
    return _words[addr];
}

void
SharedMemory::poke(std::size_t addr, std::int64_t value)
{
    FB_ASSERT(addr < _words.size(), "poke of out-of-range address "
                                        << addr);
    _words[addr] = value;
}

std::uint64_t
SharedMemory::hotSpotAccesses() const
{
    std::uint64_t best = 0;
    for (const auto &[addr, count] : _accessCounts)
        if (count > best)
            best = count;
    return best;
}

std::size_t
SharedMemory::hotSpotAddress() const
{
    std::size_t best_addr = 0;
    std::uint64_t best = 0;
    for (const auto &[addr, count] : _accessCounts) {
        if (count > best) {
            best = count;
            best_addr = addr;
        }
    }
    return best_addr;
}

void
SharedMemory::resetStats()
{
    _accessCounts.clear();
    _totalAccesses = 0;
}

void
SharedMemory::touch(std::size_t addr)
{
    ++_totalAccesses;
    ++_accessCounts[addr];
}

} // namespace fb::sim
