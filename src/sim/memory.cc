#include "sim/memory.hh"

#include <algorithm>

#include "support/logging.hh"

namespace fb::sim
{

SharedMemory::SharedMemory(std::size_t words) : _words(words, 0)
{
    FB_ASSERT(words > 0, "memory must have at least one word");
}

std::int64_t
SharedMemory::read(std::size_t addr)
{
    FB_ASSERT(addr < _words.size(), "load from out-of-range address "
                                        << addr);
    touch(addr);
    return _words[addr];
}

void
SharedMemory::write(std::size_t addr, std::int64_t value)
{
    FB_ASSERT(addr < _words.size(), "store to out-of-range address "
                                        << addr);
    touch(addr);
    _words[addr] = value;
}

std::int64_t
SharedMemory::peek(std::size_t addr) const
{
    FB_ASSERT(addr < _words.size(), "peek of out-of-range address "
                                        << addr);
    return _words[addr];
}

void
SharedMemory::poke(std::size_t addr, std::int64_t value)
{
    FB_ASSERT(addr < _words.size(), "poke of out-of-range address "
                                        << addr);
    _words[addr] = value;
}

std::uint64_t
SharedMemory::hotSpotAccesses() const
{
    std::uint64_t best = 0;
    for (const auto &[addr, count] : _accessCounts)
        if (count > best)
            best = count;
    return best;
}

std::size_t
SharedMemory::hotSpotAddress() const
{
    std::size_t best_addr = 0;
    std::uint64_t best = 0;
    for (const auto &[addr, count] : _accessCounts) {
        if (count > best) {
            best = count;
            best_addr = addr;
        }
    }
    return best_addr;
}

void
SharedMemory::resetStats()
{
    _accessCounts.clear();
    _totalAccesses = 0;
}

void
SharedMemory::touch(std::size_t addr)
{
    ++_totalAccesses;
    ++_accessCounts[addr];
}

namespace
{
constexpr std::size_t snapshotPageWords = 1024;
} // namespace

void
SharedMemory::encodeState(snapshot::Encoder &e) const
{
    e.u64(_words.size());

    // Dirty pages: any page holding a nonzero word.
    std::vector<std::size_t> dirty;
    const std::size_t pages =
        (_words.size() + snapshotPageWords - 1) / snapshotPageWords;
    for (std::size_t p = 0; p < pages; ++p) {
        const std::size_t begin = p * snapshotPageWords;
        const std::size_t end =
            std::min(begin + snapshotPageWords, _words.size());
        for (std::size_t i = begin; i < end; ++i) {
            if (_words[i] != 0) {
                dirty.push_back(p);
                break;
            }
        }
    }
    e.u64(dirty.size());
    for (std::size_t p : dirty) {
        const std::size_t begin = p * snapshotPageWords;
        const std::size_t end =
            std::min(begin + snapshotPageWords, _words.size());
        e.u64(p);
        e.u64(end - begin);
        for (std::size_t i = begin; i < end; ++i)
            e.i64(_words[i]);
    }

    std::vector<std::pair<std::size_t, std::uint64_t>> counts(
        _accessCounts.begin(), _accessCounts.end());
    std::sort(counts.begin(), counts.end());
    e.u64(counts.size());
    for (const auto &[addr, count] : counts) {
        e.u64(addr);
        e.u64(count);
    }
    e.u64(_totalAccesses);
}

bool
SharedMemory::decodeState(snapshot::Decoder &d)
{
    const std::uint64_t words = d.u64();
    if (!d.ok() || words != _words.size())
        return false;
    std::fill(_words.begin(), _words.end(), 0);

    const std::uint64_t dirty = d.u64();
    for (std::uint64_t k = 0; k < dirty; ++k) {
        const std::uint64_t page = d.u64();
        const std::uint64_t count = d.u64();
        const std::uint64_t begin = page * snapshotPageWords;
        if (!d.ok() || begin + count > _words.size() ||
            count > snapshotPageWords)
            return false;
        for (std::uint64_t i = 0; i < count; ++i)
            _words[static_cast<std::size_t>(begin + i)] = d.i64();
    }

    _accessCounts.clear();
    const std::uint64_t entries = d.u64();
    for (std::uint64_t k = 0; k < entries; ++k) {
        const std::uint64_t addr = d.u64();
        const std::uint64_t count = d.u64();
        if (!d.ok() || addr >= _words.size())
            return false;
        _accessCounts[static_cast<std::size_t>(addr)] = count;
    }
    _totalAccesses = d.u64();
    return d.ok();
}

} // namespace fb::sim
