/**
 * @file
 * Opcode definitions for the RISC-like stream machine.
 *
 * The paper (section 6) marks barrier regions either with a dedicated
 * bit in every instruction or with explicit marker instructions. Both
 * encodings are supported: Instruction::inRegion carries the bit, and
 * the BRENTER/BREXIT opcodes provide the marker alternative.
 */

#ifndef FB_ISA_OPCODE_HH
#define FB_ISA_OPCODE_HH

#include <cstdint>
#include <string>

namespace fb::isa
{

/** Machine opcodes. */
enum class Opcode : std::uint8_t
{
    // ALU register-register
    ADD,   ///< rd = rs1 + rs2
    SUB,   ///< rd = rs1 - rs2
    MUL,   ///< rd = rs1 * rs2
    DIV,   ///< rd = rs1 / rs2 (traps on zero divisor)
    AND,   ///< rd = rs1 & rs2
    OR,    ///< rd = rs1 | rs2
    XOR,   ///< rd = rs1 ^ rs2
    SLT,   ///< rd = rs1 < rs2 ? 1 : 0
    SHL,   ///< rd = rs1 << rs2
    SHR,   ///< rd = rs1 >> rs2 (arithmetic)

    // ALU register-immediate
    ADDI,  ///< rd = rs1 + imm
    MULI,  ///< rd = rs1 * imm
    SLTI,  ///< rd = rs1 < imm ? 1 : 0
    LI,    ///< rd = imm
    MOV,   ///< rd = rs1

    // Memory
    LD,    ///< rd = mem[rs1 + imm]
    ST,    ///< mem[rs1 + imm] = rs2
    FAA,   ///< rd = mem[rs1 + imm]; mem[rs1 + imm] += rs2 (atomic)

    // Control flow (target is an absolute instruction index after
    // assembly; the assembler resolves labels)
    BEQ,   ///< if (rs1 == rs2) goto imm
    BNE,   ///< if (rs1 != rs2) goto imm
    BLT,   ///< if (rs1 <  rs2) goto imm
    BGE,   ///< if (rs1 >= rs2) goto imm
    JMP,   ///< goto imm

    // Procedure linkage (section 9 future work: "allowing parallel
    // procedure calls can significantly increase the amount of
    // parallelism"). A procedure called from inside a barrier region
    // executes with the caller's region status inherited.
    CALL,  ///< rd = pc + 1; goto imm
    RET,   ///< goto rs1 (returns from the matching CALL)

    // Interrupt linkage (section 9: "the issue of interrupts and
    // traps in a barrier region is also being investigated").
    IRET,  ///< return from interrupt service routine

    // Barrier control
    SETTAG,   ///< barrier tag register = imm (0 = not participating)
    SETMASK,  ///< barrier mask register = imm bits (bit p = sync with p)
    BRENTER,  ///< marker-encoding: following instructions are in-region
    BREXIT,   ///< marker-encoding: following instructions are non-region

    // Misc
    NOP,   ///< no operation
    HALT,  ///< stop this processor's stream
};

/** Operand shape of an opcode, used by assembler and disassembler. */
enum class OperandKind : std::uint8_t
{
    None,        ///< no operands (NOP, HALT, BRENTER, BREXIT)
    RRR,         ///< rd, rs1, rs2
    RRI,         ///< rd, rs1, imm
    RI,          ///< rd, imm
    RR,          ///< rd, rs1
    Mem,         ///< rd/rs2, rs1, imm  (LD / ST)
    MemRmw,      ///< rd, rs1, imm, rs2 (FAA: rd = [rs1+imm] += rs2)
    BranchRR,    ///< rs1, rs2, target
    BranchNone,  ///< target (JMP)
    CallTarget,  ///< rd, target (CALL)
    R1,          ///< rs1 only (RET)
    Imm,         ///< imm (SETTAG, SETMASK)
};

/** Mnemonic for an opcode (lower case). */
const char *opcodeName(Opcode op);

/** Operand shape for an opcode. */
OperandKind operandKind(Opcode op);

/** True for BEQ/BNE/BLT/BGE/JMP. */
bool isBranch(Opcode op);

/** True for LD/ST. */
bool isMemory(Opcode op);

/**
 * Base execution latency in cycles for an opcode, excluding memory
 * hierarchy effects (those come from the cache model). Values are
 * RISC-typical: single-cycle ALU, multi-cycle multiply/divide.
 */
int baseLatency(Opcode op);

/** Look up an opcode by mnemonic; returns false if unknown. */
bool opcodeFromName(const std::string &name, Opcode &out);

} // namespace fb::isa

#endif // FB_ISA_OPCODE_HH
