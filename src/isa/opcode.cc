#include "isa/opcode.hh"

#include <unordered_map>

#include "support/logging.hh"

namespace fb::isa
{

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::ADD: return "add";
      case Opcode::SUB: return "sub";
      case Opcode::MUL: return "mul";
      case Opcode::DIV: return "div";
      case Opcode::AND: return "and";
      case Opcode::OR: return "or";
      case Opcode::XOR: return "xor";
      case Opcode::SLT: return "slt";
      case Opcode::SHL: return "shl";
      case Opcode::SHR: return "shr";
      case Opcode::ADDI: return "addi";
      case Opcode::MULI: return "muli";
      case Opcode::SLTI: return "slti";
      case Opcode::LI: return "li";
      case Opcode::MOV: return "mov";
      case Opcode::LD: return "ld";
      case Opcode::ST: return "st";
      case Opcode::FAA: return "faa";
      case Opcode::BEQ: return "beq";
      case Opcode::BNE: return "bne";
      case Opcode::BLT: return "blt";
      case Opcode::BGE: return "bge";
      case Opcode::JMP: return "jmp";
      case Opcode::CALL: return "call";
      case Opcode::RET: return "ret";
      case Opcode::IRET: return "iret";
      case Opcode::SETTAG: return "settag";
      case Opcode::SETMASK: return "setmask";
      case Opcode::BRENTER: return "brenter";
      case Opcode::BREXIT: return "brexit";
      case Opcode::NOP: return "nop";
      case Opcode::HALT: return "halt";
    }
    panic("unknown opcode");
}

OperandKind
operandKind(Opcode op)
{
    switch (op) {
      case Opcode::ADD:
      case Opcode::SUB:
      case Opcode::MUL:
      case Opcode::DIV:
      case Opcode::AND:
      case Opcode::OR:
      case Opcode::XOR:
      case Opcode::SLT:
      case Opcode::SHL:
      case Opcode::SHR:
        return OperandKind::RRR;
      case Opcode::ADDI:
      case Opcode::MULI:
      case Opcode::SLTI:
        return OperandKind::RRI;
      case Opcode::LI:
        return OperandKind::RI;
      case Opcode::MOV:
        return OperandKind::RR;
      case Opcode::LD:
      case Opcode::ST:
        return OperandKind::Mem;
      case Opcode::FAA:
        return OperandKind::MemRmw;
      case Opcode::BEQ:
      case Opcode::BNE:
      case Opcode::BLT:
      case Opcode::BGE:
        return OperandKind::BranchRR;
      case Opcode::JMP:
        return OperandKind::BranchNone;
      case Opcode::CALL:
        return OperandKind::CallTarget;
      case Opcode::RET:
        return OperandKind::R1;
      case Opcode::IRET:
        return OperandKind::None;
      case Opcode::SETTAG:
      case Opcode::SETMASK:
        return OperandKind::Imm;
      case Opcode::BRENTER:
      case Opcode::BREXIT:
      case Opcode::NOP:
      case Opcode::HALT:
        return OperandKind::None;
    }
    panic("unknown opcode");
}

bool
isBranch(Opcode op)
{
    switch (op) {
      case Opcode::BEQ:
      case Opcode::BNE:
      case Opcode::BLT:
      case Opcode::BGE:
      case Opcode::JMP:
        return true;
      default:
        return false;
    }
}

bool
isMemory(Opcode op)
{
    return op == Opcode::LD || op == Opcode::ST || op == Opcode::FAA;
}

int
baseLatency(Opcode op)
{
    switch (op) {
      case Opcode::MUL:
      case Opcode::MULI:
        return 3;
      case Opcode::DIV:
        return 8;
      case Opcode::FAA:
        return 2;
      default:
        return 1;
    }
}

bool
opcodeFromName(const std::string &name, Opcode &out)
{
    static const std::unordered_map<std::string, Opcode> map = [] {
        std::unordered_map<std::string, Opcode> m;
        for (int i = 0; i <= static_cast<int>(Opcode::HALT); ++i) {
            auto op = static_cast<Opcode>(i);
            m.emplace(opcodeName(op), op);
        }
        return m;
    }();
    auto it = map.find(name);
    if (it == map.end())
        return false;
    out = it->second;
    return true;
}

} // namespace fb::isa
