/**
 * @file
 * A single machine instruction, carrying the fuzzy-barrier region bit.
 */

#ifndef FB_ISA_INSTRUCTION_HH
#define FB_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "isa/opcode.hh"

namespace fb::isa
{

/** Number of general-purpose registers per processor. r0 reads as 0. */
constexpr int numRegisters = 32;

/** Register index type. */
using RegIndex = std::int8_t;

/**
 * One decoded instruction.
 *
 * The @ref inRegion flag is the per-instruction barrier-region bit from
 * section 6 of the paper: "a single bit in each instruction is used.
 * The bit is one if the instruction is from a barrier region and zero
 * otherwise."
 */
struct Instruction
{
    Opcode op = Opcode::NOP;
    RegIndex rd = 0;    ///< destination register
    RegIndex rs1 = 0;   ///< first source register
    RegIndex rs2 = 0;   ///< second source register
    std::int64_t imm = 0;  ///< immediate / branch target / address offset
    bool inRegion = false; ///< barrier-region bit

    /** Build a three-register ALU instruction. */
    static Instruction rrr(Opcode op, int rd, int rs1, int rs2);

    /** Build a register-register-immediate instruction. */
    static Instruction rri(Opcode op, int rd, int rs1, std::int64_t imm);

    /** Build a load-immediate. */
    static Instruction li(int rd, std::int64_t imm);

    /** Build a register move. */
    static Instruction mov(int rd, int rs1);

    /** Build a load: rd = mem[rs1 + off]. */
    static Instruction ld(int rd, int rs1, std::int64_t off);

    /** Build a store: mem[rs1 + off] = rs2. */
    static Instruction st(int rs1, std::int64_t off, int rs2);

    /** Build an atomic fetch-and-add: rd = mem[rs1+off] += rs2. */
    static Instruction faa(int rd, int rs1, std::int64_t off, int rs2);

    /** Build a conditional branch to instruction index @p target. */
    static Instruction branch(Opcode op, int rs1, int rs2,
                              std::int64_t target);

    /** Build an unconditional jump to instruction index @p target. */
    static Instruction jmp(std::int64_t target);

    /** Build a procedure call: rd = return address, goto target. */
    static Instruction call(int rd, std::int64_t target);

    /** Build a procedure return through register rs1. */
    static Instruction ret(int rs1);

    /** Build a SETTAG. */
    static Instruction settag(std::int64_t tag);

    /** Build a SETMASK. */
    static Instruction setmask(std::int64_t mask);

    /** Build an operand-less instruction (NOP/HALT/BRENTER/BREXIT). */
    static Instruction simple(Opcode op);

    /** Mark this instruction as part of a barrier region. */
    Instruction &region(bool in = true)
    {
        inRegion = in;
        return *this;
    }

    /** Disassemble to the textual form the assembler accepts. */
    std::string toString() const;
};

} // namespace fb::isa

#endif // FB_ISA_INSTRUCTION_HH
