/**
 * @file
 * A per-stream machine program: instructions, labels, and the static
 * region structure needed to validate fuzzy-barrier code.
 */

#ifndef FB_ISA_PROGRAM_HH
#define FB_ISA_PROGRAM_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "isa/instruction.hh"
#include "support/logging.hh"

namespace fb::isa
{

/**
 * A maximal physically-contiguous run of barrier-region instructions.
 */
struct RegionRun
{
    std::size_t first;      ///< index of first in-region instruction
    std::size_t last;       ///< index of last in-region instruction
    int barrierId;          ///< logical barrier id, -1 if unassigned
};

/**
 * One instruction stream for one processor.
 *
 * The program owns its instructions plus two pieces of metadata:
 * labels (resolved to absolute indices by finalize()) and an optional
 * per-instruction logical barrier id. The barrier id expresses the
 * compiler's *intent* — which logical barrier a region instance
 * belongs to — and is what makes the section-3 invalid-branch check
 * (Fig. 2 of the paper) possible.
 */
class Program
{
  public:
    Program() = default;

    /** Append an instruction; returns its index. */
    std::size_t append(const Instruction &instr, int barrier_id = -1);

    /** Bind @p name to the index of the next appended instruction. */
    void defineLabel(const std::string &name);

    /**
     * Append a branch to a label (possibly not yet defined). The
     * target is patched during finalize().
     */
    std::size_t appendBranchTo(Opcode op, int rs1, int rs2,
                               const std::string &label,
                               int barrier_id = -1);

    /** Append an unconditional jump to a label. */
    std::size_t appendJumpTo(const std::string &label, int barrier_id = -1);

    /** Append a procedure call to a label (return address in rd). */
    std::size_t appendCallTo(int rd, const std::string &label,
                             int barrier_id = -1);

    /**
     * Resolve label references and run structural validation. Calls
     * fatal() on undefined labels or out-of-range branch targets.
     */
    void finalize();

    /** True once finalize() has run. */
    bool finalized() const { return _finalized; }

    /** Number of instructions. */
    std::size_t size() const { return _instrs.size(); }

    /** True if the program has no instructions. */
    bool empty() const { return _instrs.empty(); }

    /** Access instruction @p idx. Inline: this is the fetch of the
     * per-cycle interpreter's fetch/decode/execute step. */
    const Instruction &at(std::size_t idx) const
    {
        FB_ASSERT(idx < _instrs.size(),
                  "instruction index " << idx << " out of range");
        return _instrs[idx];
    }

    /** Mutable access (used by the region-encoding converters). */
    Instruction &at(std::size_t idx)
    {
        FB_ASSERT(idx < _instrs.size(),
                  "instruction index " << idx << " out of range");
        return _instrs[idx];
    }

    /** Logical barrier id of instruction @p idx (-1 if none). */
    int barrierId(std::size_t idx) const;

    /** Set the logical barrier id of instruction @p idx. */
    void setBarrierId(std::size_t idx, int id);

    /** Index of @p label; empty if undefined. */
    std::optional<std::size_t> labelIndex(const std::string &label) const;

    /** All maximal contiguous in-region runs, in program order. */
    std::vector<RegionRun> regionRuns() const;

    /** Fraction of instructions with the region bit set. */
    double regionFraction() const;

    /**
     * Check the section-3 rule: control must never transfer directly
     * from one barrier region to a *different* logical barrier's
     * region. Returns a human-readable description of the first
     * violation, or nullopt if the program is valid.
     *
     * An edge between two in-region instructions with distinct
     * non-negative barrier ids is a violation: a processor taking it
     * would merge two logical barrier episodes into one and deadlock
     * its partners (the Fig. 2 scenario). Fall-through and branch
     * edges are both considered.
     */
    std::optional<std::string> checkRegionBranches() const;

    /**
     * Convert the per-instruction region-bit encoding to the explicit
     * BRENTER/BREXIT marker encoding (section 6's "alternative and
     * less expensive approach"). The result has all region bits clear
     * and markers inserted at every region boundary. Branch targets
     * are re-pointed at the shifted indices.
     *
     * @pre the program is finalized and every in-region run is entered
     * only at its first instruction (true for compiler-generated
     * straight-line loops; programs with side entries keep the bit
     * encoding).
     */
    Program toMarkerEncoding() const;

    /** Disassemble the whole program, one instruction per line. */
    std::string toString() const;

  private:
    struct Fixup
    {
        std::size_t instrIdx;
        std::string label;
    };

    std::vector<Instruction> _instrs;
    std::vector<int> _barrierIds;
    std::map<std::string, std::size_t> _labels;
    std::vector<Fixup> _fixups;
    std::vector<std::string> _pendingLabels;
    bool _finalized = false;
};

} // namespace fb::isa

#endif // FB_ISA_PROGRAM_HH
