#include "isa/assembler.hh"

#include <sstream>

#include "support/strutil.hh"

namespace fb::isa
{

namespace
{

/** Parser for one source line's operand list. */
class LineParser
{
  public:
    LineParser(std::string text) : _text(std::move(text)) {}

    /** Split the operand text on commas, trimming each field. */
    std::vector<std::string>
    fields() const
    {
        std::vector<std::string> out;
        for (auto &f : split(_text, ','))
            out.push_back(trim(f));
        return out;
    }

  private:
    std::string _text;
};

bool
parseReg(const std::string &tok, int &out)
{
    if (tok.size() < 2 || (tok[0] != 'r' && tok[0] != 'R'))
        return false;
    std::int64_t v;
    if (!parseInt(tok.substr(1), v))
        return false;
    if (v < 0 || v >= numRegisters)
        return false;
    out = static_cast<int>(v);
    return true;
}

/** Parse "offset(base)" memory operand form. */
bool
parseMem(const std::string &tok, std::int64_t &off, int &base)
{
    auto open = tok.find('(');
    auto close = tok.find(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open || close != tok.size() - 1)
        return false;
    std::string off_str = trim(tok.substr(0, open));
    std::string base_str = trim(tok.substr(open + 1, close - open - 1));
    if (off_str.empty())
        off_str = "0";
    return parseInt(off_str, off) && parseReg(base_str, base);
}

} // namespace

bool
Assembler::assemble(const std::string &source, Program &out,
                    std::string &error)
{
    Program prog;
    std::istringstream in(source);
    std::string line;
    int line_no = 0;
    bool in_region = false;
    int region_id = -1;
    std::vector<std::pair<std::string, int>> referenced_labels;
    std::vector<std::string> defined_labels;

    auto fail = [&](const std::string &msg) {
        error = "line " + std::to_string(line_no) + ": " + msg;
        return false;
    };

    while (std::getline(in, line)) {
        ++line_no;
        auto comment = line.find(';');
        if (comment != std::string::npos)
            line = line.substr(0, comment);
        line = trim(line);
        if (line.empty())
            continue;

        // Labels (possibly several, possibly followed by an instruction).
        while (true) {
            auto colon = line.find(':');
            if (colon == std::string::npos)
                break;
            std::string label = trim(line.substr(0, colon));
            if (label.empty() ||
                label.find_first_of(" \t") != std::string::npos)
                return fail("malformed label");
            prog.defineLabel(label);
            defined_labels.push_back(label);
            line = trim(line.substr(colon + 1));
        }
        if (line.empty())
            continue;

        // Directives.
        if (line[0] == '.') {
            auto toks = splitWhitespace(line);
            if (toks[0] == ".region") {
                if (in_region)
                    return fail(".region while already in a region");
                in_region = true;
                region_id = -1;
                if (toks.size() > 1) {
                    std::int64_t id;
                    if (!parseInt(toks[1], id) || id < 0)
                        return fail("bad region id");
                    region_id = static_cast<int>(id);
                }
            } else if (toks[0] == ".endregion") {
                if (!in_region)
                    return fail(".endregion outside a region");
                in_region = false;
            } else {
                return fail("unknown directive " + toks[0]);
            }
            continue;
        }

        // Instruction: mnemonic then comma-separated operands.
        std::string mnemonic, rest;
        auto space = line.find_first_of(" \t");
        if (space == std::string::npos) {
            mnemonic = line;
        } else {
            mnemonic = line.substr(0, space);
            rest = trim(line.substr(space + 1));
        }
        Opcode op;
        if (!opcodeFromName(toLower(mnemonic), op))
            return fail("unknown mnemonic '" + mnemonic + "'");

        auto f = LineParser(rest).fields();
        Instruction instr;
        std::string branch_label;
        bool is_label_branch = false;

        switch (operandKind(op)) {
          case OperandKind::None: {
            if (!f.empty())
                return fail("unexpected operands");
            instr = Instruction::simple(op);
            break;
          }
          case OperandKind::RRR: {
            int rd, rs1, rs2;
            if (f.size() != 3 || !parseReg(f[0], rd) ||
                !parseReg(f[1], rs1) || !parseReg(f[2], rs2))
                return fail("expected rd, rs1, rs2");
            instr = Instruction::rrr(op, rd, rs1, rs2);
            break;
          }
          case OperandKind::RRI: {
            int rd, rs1;
            std::int64_t imm;
            if (f.size() != 3 || !parseReg(f[0], rd) ||
                !parseReg(f[1], rs1) || !parseInt(f[2], imm))
                return fail("expected rd, rs1, imm");
            instr = Instruction::rri(op, rd, rs1, imm);
            break;
          }
          case OperandKind::RI: {
            int rd;
            std::int64_t imm;
            if (f.size() != 2 || !parseReg(f[0], rd) ||
                !parseInt(f[1], imm))
                return fail("expected rd, imm");
            instr = Instruction::li(rd, imm);
            break;
          }
          case OperandKind::RR: {
            int rd, rs1;
            if (f.size() != 2 || !parseReg(f[0], rd) ||
                !parseReg(f[1], rs1))
                return fail("expected rd, rs1");
            instr = Instruction::mov(rd, rs1);
            break;
          }
          case OperandKind::Mem: {
            int reg, base;
            std::int64_t off;
            if (f.size() != 2 || !parseReg(f[0], reg) ||
                !parseMem(f[1], off, base))
                return fail("expected reg, offset(base)");
            instr = (op == Opcode::LD) ? Instruction::ld(reg, base, off)
                                       : Instruction::st(base, off, reg);
            break;
          }
          case OperandKind::MemRmw: {
            int rd, base, rs2;
            std::int64_t off;
            if (f.size() != 3 || !parseReg(f[0], rd) ||
                !parseMem(f[1], off, base) || !parseReg(f[2], rs2))
                return fail("expected rd, offset(base), rs2");
            instr = Instruction::faa(rd, base, off, rs2);
            break;
          }
          case OperandKind::BranchRR: {
            int rs1, rs2;
            if (f.size() != 3 || !parseReg(f[0], rs1) ||
                !parseReg(f[1], rs2))
                return fail("expected rs1, rs2, label");
            std::int64_t target;
            if (parseInt(f[2], target)) {
                instr = Instruction::branch(op, rs1, rs2, target);
            } else {
                instr = Instruction::branch(op, rs1, rs2, 0);
                branch_label = f[2];
                is_label_branch = true;
            }
            break;
          }
          case OperandKind::BranchNone: {
            if (f.size() != 1)
                return fail("expected label");
            std::int64_t target;
            if (parseInt(f[0], target)) {
                instr = Instruction::jmp(target);
            } else {
                instr = Instruction::jmp(0);
                branch_label = f[0];
                is_label_branch = true;
            }
            break;
          }
          case OperandKind::CallTarget: {
            int rd;
            if (f.size() != 2 || !parseReg(f[0], rd))
                return fail("expected rd, label");
            std::int64_t target;
            if (parseInt(f[1], target)) {
                instr = Instruction::call(rd, target);
            } else {
                referenced_labels.emplace_back(f[1], line_no);
                std::size_t idx = prog.appendCallTo(rd, f[1],
                                                    in_region ? region_id
                                                              : -1);
                prog.at(idx).inRegion = in_region;
                continue;
            }
            break;
          }
          case OperandKind::R1: {
            int rs1;
            if (f.size() != 1 || !parseReg(f[0], rs1))
                return fail("expected rs1");
            instr = Instruction::ret(rs1);
            break;
          }
          case OperandKind::Imm: {
            std::int64_t imm;
            if (f.size() != 1 || !parseInt(f[0], imm))
                return fail("expected imm");
            instr = (op == Opcode::SETTAG) ? Instruction::settag(imm)
                                           : Instruction::setmask(imm);
            break;
          }
        }

        instr.inRegion = in_region;
        int id = in_region ? region_id : -1;
        if (is_label_branch) {
            referenced_labels.emplace_back(branch_label, line_no);
            std::size_t idx;
            if (operandKind(op) == OperandKind::BranchNone)
                idx = prog.appendJumpTo(branch_label, id);
            else
                idx = prog.appendBranchTo(op, instr.rs1, instr.rs2,
                                          branch_label, id);
            prog.at(idx).inRegion = in_region;
        } else {
            prog.append(instr, id);
        }
    }

    if (in_region)
        return fail("unterminated .region at end of file");

    for (const auto &[label, ref_line] : referenced_labels) {
        bool found = false;
        for (const auto &d : defined_labels)
            found = found || d == label;
        if (!found) {
            line_no = ref_line;
            return fail("undefined label '" + label + "'");
        }
    }

    prog.finalize();
    out = std::move(prog);
    return true;
}

} // namespace fb::isa
