#include "isa/program.hh"

#include <sstream>

#include "support/logging.hh"

namespace fb::isa
{

std::size_t
Program::append(const Instruction &instr, int barrier_id)
{
    FB_ASSERT(!_finalized, "append after finalize");
    for (const auto &name : _pendingLabels) {
        auto [it, inserted] = _labels.emplace(name, _instrs.size());
        if (!inserted)
            fatal("duplicate label '" + name + "'");
    }
    _pendingLabels.clear();
    _instrs.push_back(instr);
    _barrierIds.push_back(barrier_id);
    return _instrs.size() - 1;
}

void
Program::defineLabel(const std::string &name)
{
    FB_ASSERT(!_finalized, "defineLabel after finalize");
    _pendingLabels.push_back(name);
}

std::size_t
Program::appendBranchTo(Opcode op, int rs1, int rs2,
                        const std::string &label, int barrier_id)
{
    std::size_t idx = append(Instruction::branch(op, rs1, rs2, 0),
                             barrier_id);
    _fixups.push_back({idx, label});
    return idx;
}

std::size_t
Program::appendJumpTo(const std::string &label, int barrier_id)
{
    std::size_t idx = append(Instruction::jmp(0), barrier_id);
    _fixups.push_back({idx, label});
    return idx;
}

std::size_t
Program::appendCallTo(int rd, const std::string &label, int barrier_id)
{
    std::size_t idx = append(Instruction::call(rd, 0), barrier_id);
    _fixups.push_back({idx, label});
    return idx;
}

void
Program::finalize()
{
    FB_ASSERT(!_finalized, "finalize called twice");
    // A trailing label binds to one-past-the-end; branching there
    // terminates the stream like HALT.
    for (const auto &name : _pendingLabels) {
        auto [it, inserted] = _labels.emplace(name, _instrs.size());
        if (!inserted)
            fatal("duplicate label '" + name + "'");
    }
    _pendingLabels.clear();
    for (const auto &fix : _fixups) {
        auto it = _labels.find(fix.label);
        if (it == _labels.end())
            fatal("undefined label '" + fix.label + "'");
        _instrs[fix.instrIdx].imm =
            static_cast<std::int64_t>(it->second);
    }
    _fixups.clear();
    for (std::size_t i = 0; i < _instrs.size(); ++i) {
        const auto &instr = _instrs[i];
        if (isBranch(instr.op) || instr.op == Opcode::CALL) {
            if (instr.imm < 0 ||
                instr.imm > static_cast<std::int64_t>(_instrs.size())) {
                fatal("branch at " + std::to_string(i) +
                      " targets out-of-range index " +
                      std::to_string(instr.imm));
            }
        }
    }
    _finalized = true;
}

int
Program::barrierId(std::size_t idx) const
{
    FB_ASSERT(idx < _barrierIds.size(), "index out of range");
    return _barrierIds[idx];
}

void
Program::setBarrierId(std::size_t idx, int id)
{
    FB_ASSERT(idx < _barrierIds.size(), "index out of range");
    _barrierIds[idx] = id;
}

std::optional<std::size_t>
Program::labelIndex(const std::string &label) const
{
    auto it = _labels.find(label);
    if (it == _labels.end())
        return std::nullopt;
    return it->second;
}

std::vector<RegionRun>
Program::regionRuns() const
{
    std::vector<RegionRun> runs;
    std::size_t i = 0;
    while (i < _instrs.size()) {
        if (!_instrs[i].inRegion) {
            ++i;
            continue;
        }
        RegionRun run{i, i, _barrierIds[i]};
        while (run.last + 1 < _instrs.size() &&
               _instrs[run.last + 1].inRegion) {
            ++run.last;
        }
        runs.push_back(run);
        i = run.last + 1;
    }
    return runs;
}

double
Program::regionFraction() const
{
    if (_instrs.empty())
        return 0.0;
    std::size_t in = 0;
    for (const auto &instr : _instrs)
        in += instr.inRegion ? 1 : 0;
    return static_cast<double>(in) / static_cast<double>(_instrs.size());
}

std::optional<std::string>
Program::checkRegionBranches() const
{
    FB_ASSERT(_finalized, "checkRegionBranches before finalize");
    auto check_edge =
        [&](std::size_t from, std::size_t to) -> std::optional<std::string> {
        if (to >= _instrs.size())
            return std::nullopt;
        if (!_instrs[from].inRegion || !_instrs[to].inRegion)
            return std::nullopt;
        int a = _barrierIds[from];
        int b = _barrierIds[to];
        if (a >= 0 && b >= 0 && a != b) {
            std::ostringstream oss;
            oss << "invalid branch: control transfers from barrier " << a
                << " (instr " << from << ") directly into barrier " << b
                << " (instr " << to
                << ") without crossing a non-barrier region";
            return oss.str();
        }
        return std::nullopt;
    };

    for (std::size_t i = 0; i < _instrs.size(); ++i) {
        const auto &instr = _instrs[i];
        if (isBranch(instr.op)) {
            if (auto err = check_edge(i, static_cast<std::size_t>(instr.imm)))
                return err;
            // Conditional branches also fall through.
            if (instr.op != Opcode::JMP) {
                if (auto err = check_edge(i, i + 1))
                    return err;
            }
        } else if (instr.op != Opcode::HALT) {
            if (auto err = check_edge(i, i + 1))
                return err;
        }
    }
    return std::nullopt;
}

Program
Program::toMarkerEncoding() const
{
    FB_ASSERT(_finalized, "toMarkerEncoding before finalize");

    // Branch targets need a marker too: the marker flag is dynamic
    // state, so a branch that crosses a region boundary (e.g. the
    // backedge of a loop whose barrier region spans iterations) must
    // land on a BRENTER/BREXIT matching the target's regionness.
    // Markers are idempotent, so placing one before every branch
    // target is always safe.
    // CALL targets deliberately get no marker: a procedure inherits
    // the caller's region status dynamically, which the marker flag
    // already provides.
    std::vector<bool> is_target(_instrs.size() + 1, false);
    for (const auto &instr : _instrs) {
        if (isBranch(instr.op))
            is_target[static_cast<std::size_t>(instr.imm)] = true;
    }

    // Pass 1: decide where markers go and compute the index mapping.
    // A BRENTER is inserted before the first instruction of each run,
    // a BREXIT after the last, and a matching marker before every
    // branch target. Branches are re-pointed at the marker so the
    // flag is correct along every incoming edge.
    std::vector<std::size_t> newIndex(_instrs.size() + 1);
    std::vector<Instruction> out;
    std::vector<int> outIds;
    bool in_region = false;
    for (std::size_t i = 0; i < _instrs.size(); ++i) {
        bool r = _instrs[i].inRegion;
        bool need_marker = (r != in_region) || is_target[i];
        newIndex[i] = out.size();
        if (need_marker) {
            out.push_back(Instruction::simple(
                r ? Opcode::BRENTER : Opcode::BREXIT));
            outIds.push_back(r ? _barrierIds[i] : -1);
        }
        in_region = r;
        Instruction copy = _instrs[i];
        copy.inRegion = false;
        out.push_back(copy);
        outIds.push_back(_barrierIds[i]);
    }
    if (in_region) {
        out.push_back(Instruction::simple(Opcode::BREXIT));
        outIds.push_back(-1);
    }
    newIndex[_instrs.size()] = out.size();

    // Pass 2: re-point branch targets at the shifted indices.
    Program result;
    for (std::size_t i = 0; i < out.size(); ++i) {
        Instruction instr = out[i];
        if (isBranch(instr.op) || instr.op == Opcode::CALL) {
            instr.imm = static_cast<std::int64_t>(
                newIndex[static_cast<std::size_t>(instr.imm)]);
        }
        result.append(instr, outIds[i]);
    }
    result.finalize();
    return result;
}

std::string
Program::toString() const
{
    std::ostringstream oss;
    std::map<std::size_t, std::string> byIndex;
    for (const auto &[name, idx] : _labels)
        byIndex[idx] = name;
    for (std::size_t i = 0; i < _instrs.size(); ++i) {
        auto it = byIndex.find(i);
        if (it != byIndex.end())
            oss << it->second << ":\n";
        oss << "  " << i << ": " << _instrs[i].toString() << "\n";
    }
    return oss.str();
}

} // namespace fb::isa
