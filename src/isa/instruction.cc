#include "isa/instruction.hh"

#include <sstream>

#include "support/logging.hh"

namespace fb::isa
{

namespace
{

RegIndex
checkedReg(int r)
{
    FB_ASSERT(r >= 0 && r < numRegisters, "register index " << r
                                                            << " out of range");
    return static_cast<RegIndex>(r);
}

} // namespace

Instruction
Instruction::rrr(Opcode op, int rd, int rs1, int rs2)
{
    FB_ASSERT(operandKind(op) == OperandKind::RRR, "not an RRR opcode");
    Instruction i;
    i.op = op;
    i.rd = checkedReg(rd);
    i.rs1 = checkedReg(rs1);
    i.rs2 = checkedReg(rs2);
    return i;
}

Instruction
Instruction::rri(Opcode op, int rd, int rs1, std::int64_t imm)
{
    FB_ASSERT(operandKind(op) == OperandKind::RRI, "not an RRI opcode");
    Instruction i;
    i.op = op;
    i.rd = checkedReg(rd);
    i.rs1 = checkedReg(rs1);
    i.imm = imm;
    return i;
}

Instruction
Instruction::li(int rd, std::int64_t imm)
{
    Instruction i;
    i.op = Opcode::LI;
    i.rd = checkedReg(rd);
    i.imm = imm;
    return i;
}

Instruction
Instruction::mov(int rd, int rs1)
{
    Instruction i;
    i.op = Opcode::MOV;
    i.rd = checkedReg(rd);
    i.rs1 = checkedReg(rs1);
    return i;
}

Instruction
Instruction::ld(int rd, int rs1, std::int64_t off)
{
    Instruction i;
    i.op = Opcode::LD;
    i.rd = checkedReg(rd);
    i.rs1 = checkedReg(rs1);
    i.imm = off;
    return i;
}

Instruction
Instruction::st(int rs1, std::int64_t off, int rs2)
{
    Instruction i;
    i.op = Opcode::ST;
    i.rs1 = checkedReg(rs1);
    i.rs2 = checkedReg(rs2);
    i.imm = off;
    return i;
}

Instruction
Instruction::faa(int rd, int rs1, std::int64_t off, int rs2)
{
    Instruction i;
    i.op = Opcode::FAA;
    i.rd = checkedReg(rd);
    i.rs1 = checkedReg(rs1);
    i.rs2 = checkedReg(rs2);
    i.imm = off;
    return i;
}

Instruction
Instruction::branch(Opcode op, int rs1, int rs2, std::int64_t target)
{
    FB_ASSERT(operandKind(op) == OperandKind::BranchRR,
              "not a conditional branch opcode");
    Instruction i;
    i.op = op;
    i.rs1 = checkedReg(rs1);
    i.rs2 = checkedReg(rs2);
    i.imm = target;
    return i;
}

Instruction
Instruction::jmp(std::int64_t target)
{
    Instruction i;
    i.op = Opcode::JMP;
    i.imm = target;
    return i;
}

Instruction
Instruction::call(int rd, std::int64_t target)
{
    Instruction i;
    i.op = Opcode::CALL;
    i.rd = checkedReg(rd);
    i.imm = target;
    return i;
}

Instruction
Instruction::ret(int rs1)
{
    Instruction i;
    i.op = Opcode::RET;
    i.rs1 = checkedReg(rs1);
    return i;
}

Instruction
Instruction::settag(std::int64_t tag)
{
    Instruction i;
    i.op = Opcode::SETTAG;
    i.imm = tag;
    return i;
}

Instruction
Instruction::setmask(std::int64_t mask)
{
    Instruction i;
    i.op = Opcode::SETMASK;
    i.imm = mask;
    return i;
}

Instruction
Instruction::simple(Opcode op)
{
    FB_ASSERT(operandKind(op) == OperandKind::None,
              "opcode requires operands");
    Instruction i;
    i.op = op;
    return i;
}

std::string
Instruction::toString() const
{
    std::ostringstream oss;
    oss << opcodeName(op);
    auto reg = [](int r) { return "r" + std::to_string(r); };
    switch (operandKind(op)) {
      case OperandKind::None:
        break;
      case OperandKind::RRR:
        oss << " " << reg(rd) << ", " << reg(rs1) << ", " << reg(rs2);
        break;
      case OperandKind::RRI:
        oss << " " << reg(rd) << ", " << reg(rs1) << ", " << imm;
        break;
      case OperandKind::RI:
        oss << " " << reg(rd) << ", " << imm;
        break;
      case OperandKind::RR:
        oss << " " << reg(rd) << ", " << reg(rs1);
        break;
      case OperandKind::Mem:
        if (op == Opcode::LD)
            oss << " " << reg(rd) << ", " << imm << "(" << reg(rs1) << ")";
        else
            oss << " " << reg(rs2) << ", " << imm << "(" << reg(rs1) << ")";
        break;
      case OperandKind::MemRmw:
        oss << " " << reg(rd) << ", " << imm << "(" << reg(rs1) << "), "
            << reg(rs2);
        break;
      case OperandKind::BranchRR:
        oss << " " << reg(rs1) << ", " << reg(rs2) << ", " << imm;
        break;
      case OperandKind::BranchNone:
        oss << " " << imm;
        break;
      case OperandKind::CallTarget:
        oss << " " << reg(rd) << ", " << imm;
        break;
      case OperandKind::R1:
        oss << " " << reg(rs1);
        break;
      case OperandKind::Imm:
        oss << " " << imm;
        break;
    }
    if (inRegion)
        oss << "    ; [region]";
    return oss.str();
}

} // namespace fb::isa
