/**
 * @file
 * Two-pass textual assembler for the stream machine.
 *
 * Syntax (one instruction per line, ';' starts a comment):
 *
 *     settag 1
 *     setmask 6
 *   loop:
 *     li   r1, 5
 *   .region 1        ; following instructions carry the region bit,
 *                    ; logical barrier id 1
 *     addi r2, r2, 1
 *   .endregion
 *     ld   r4, 8(r3)
 *     st   r4, 0(r3)
 *     bne  r1, r2, loop
 *     halt
 *
 * Branch targets are labels. Memory operands use offset(base) form.
 */

#ifndef FB_ISA_ASSEMBLER_HH
#define FB_ISA_ASSEMBLER_HH

#include <string>

#include "isa/program.hh"

namespace fb::isa
{

/**
 * Assembles source text into a finalized Program.
 */
class Assembler
{
  public:
    /**
     * Assemble @p source. On success @p out holds the finalized
     * program and true is returned; on failure false is returned and
     * @p error describes the problem with a line number.
     */
    static bool assemble(const std::string &source, Program &out,
                         std::string &error);
};

} // namespace fb::isa

#endif // FB_ISA_ASSEMBLER_HH
