/**
 * @file
 * Pool of fully-constructed sim::Machine instances, recycled across
 * scenarios via Machine::reset().
 */

#ifndef FB_EXEC_MACHINE_POOL_HH
#define FB_EXEC_MACHINE_POOL_HH

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/machine.hh"

namespace fb::exec
{

/**
 * Recycles machines instead of reallocating them. acquire() hands
 * out a machine matching the config's structural shape
 * (sim::Machine::structuralKey), reset() to the exact config — a
 * recycled machine is observably identical to a fresh one (the
 * debug builds assert it snapshot-for-snapshot on every reset).
 *
 * NOT thread-safe: each campaign worker owns a private pool, which
 * is the point — no cross-worker contention on the hot path. Leases
 * are RAII: destroying (or move-assigning over) a Lease returns the
 * machine, so a caller may hold several same-shape machines at once
 * (the resume oracle runs its A/B/C machines simultaneously).
 */
class MachinePool
{
  public:
    /** RAII handle to a pooled machine. */
    class Lease
    {
      public:
        Lease() = default;
        ~Lease() { release(); }

        Lease(Lease &&other) noexcept
            : _pool(other._pool), _machine(std::move(other._machine)),
              _key(other._key)
        {
            other._pool = nullptr;
        }

        Lease &
        operator=(Lease &&other) noexcept
        {
            if (this != &other) {
                release();
                _pool = other._pool;
                _machine = std::move(other._machine);
                _key = other._key;
                other._pool = nullptr;
            }
            return *this;
        }

        Lease(const Lease &) = delete;
        Lease &operator=(const Lease &) = delete;

        /** True if this lease holds a machine. */
        explicit operator bool() const { return _machine != nullptr; }

        sim::Machine &operator*() const { return *_machine; }
        sim::Machine *operator->() const { return _machine.get(); }
        sim::Machine *get() const { return _machine.get(); }

      private:
        friend class MachinePool;
        Lease(MachinePool *pool, std::unique_ptr<sim::Machine> machine,
              std::uint64_t key)
            : _pool(pool), _machine(std::move(machine)), _key(key)
        {
        }

        void
        release()
        {
            if (_pool != nullptr && _machine != nullptr)
                _pool->put(_key, std::move(_machine));
            _pool = nullptr;
            _machine = nullptr;
        }

        MachinePool *_pool = nullptr;
        std::unique_ptr<sim::Machine> _machine;
        std::uint64_t _key = 0;
    };

    /**
     * A machine configured exactly as @p config — recycled when one
     * of the matching shape is free, freshly constructed otherwise.
     */
    Lease acquire(const sim::MachineConfig &config);

    /** Machines constructed because no shape match was free. */
    std::uint64_t builds() const { return _builds; }

    /** Acquisitions served by recycling a pooled machine. */
    std::uint64_t reuses() const { return _reuses; }

  private:
    friend class Lease;
    void put(std::uint64_t key, std::unique_ptr<sim::Machine> machine);

    /** Hard cap on idle pooled machines (beyond it, releases free). */
    static constexpr std::size_t maxIdle = 16;

    std::vector<std::pair<std::uint64_t, std::unique_ptr<sim::Machine>>>
        _free;
    std::uint64_t _builds = 0;
    std::uint64_t _reuses = 0;
};

} // namespace fb::exec

#endif // FB_EXEC_MACHINE_POOL_HH
