#include "exec/program_cache.hh"

#include "isa/assembler.hh"

namespace fb::exec
{

std::shared_ptr<const InternedProgram>
ProgramCache::intern(const std::string &source)
{
    {
        std::lock_guard<std::mutex> lk(_mu);
        auto it = _cache.find(source);
        if (it != _cache.end()) {
            ++_hits;
            return it->second;
        }
    }

    // Assemble outside the lock: distinct sources do not serialize
    // against each other. A racing intern of the same source does the
    // work twice; the first insert wins and both callers see one
    // canonical entry.
    auto entry = std::make_shared<InternedProgram>();
    isa::Program prog;
    std::string err;
    if (!isa::Assembler::assemble(source, prog, err)) {
        entry->error = std::move(err);
    } else {
        entry->ok = true;
        entry->regionViolation = prog.checkRegionBranches();
        entry->markers = prog.toMarkerEncoding();
        entry->bits = std::move(prog);
        if (entry->bits.size() > 0) {
            entry->bitsDecoded = sim::decodeProgram(entry->bits);
            entry->markersDecoded = sim::decodeProgram(entry->markers);
        }
    }

    std::lock_guard<std::mutex> lk(_mu);
    auto [it, inserted] = _cache.emplace(source, std::move(entry));
    ++_misses;
    return it->second;
}

std::uint64_t
ProgramCache::hits() const
{
    std::lock_guard<std::mutex> lk(_mu);
    return _hits;
}

std::uint64_t
ProgramCache::misses() const
{
    std::lock_guard<std::mutex> lk(_mu);
    return _misses;
}

} // namespace fb::exec
