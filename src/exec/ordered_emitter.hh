/**
 * @file
 * Seed-ordered result streaming, shared by the in-process campaign
 * engine and the multi-process campaign service.
 *
 * The emitter is the single place where out-of-order completions are
 * turned back into the deterministic ascending-index stream the
 * campaign output contract promises: deliver() buffers a result, then
 * flushes the contiguous prefix to the consumer under the same lock,
 * so consumer calls are both ordered and serialized.
 *
 * Unlike the original in-process-only version, deliver() tolerates
 * duplicates: a campaign service that loses a worker re-runs the
 * incomplete tail of its lease, and a result message dropped by the
 * transport means the re-run can produce an index the coordinator has
 * already seen (or will see twice). The first delivery wins; repeats
 * are counted and discarded, so at-least-once execution upstream
 * still yields exactly-once, in-order consumption downstream.
 */

#ifndef FB_EXEC_ORDERED_EMITTER_HH
#define FB_EXEC_ORDERED_EMITTER_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <utility>

#include "exec/campaign.hh"

namespace fb::exec
{

class OrderedEmitter
{
  public:
    explicit OrderedEmitter(const ItemConsumer &consume)
        : _consume(consume)
    {
    }

    /**
     * Hand in the result for @p index. Returns true if this was the
     * first delivery for the index (the result is queued or flushed),
     * false for a duplicate (the result is discarded).
     */
    bool
    deliver(std::uint64_t index, ItemResult result)
    {
        std::lock_guard<std::mutex> lk(_mu);
        if (index < _next || _pending.count(index) != 0) {
            ++_duplicates;
            return false;
        }
        _pending.emplace(index, std::move(result));
        while (!_pending.empty() &&
               _pending.begin()->first == _next) {
            _consume(_next, _pending.begin()->second);
            _pending.erase(_pending.begin());
            ++_next;
        }
        return true;
    }

    /**
     * True if @p index has already been delivered (flushed or still
     * buffered) — i.e. a re-run of it would be redundant.
     */
    bool
    seen(std::uint64_t index) const
    {
        std::lock_guard<std::mutex> lk(_mu);
        return index < _next || _pending.count(index) != 0;
    }

    /** Lowest index not yet flushed to the consumer. */
    std::uint64_t
    next() const
    {
        std::lock_guard<std::mutex> lk(_mu);
        return _next;
    }

    /** Results buffered behind a gap. */
    std::uint64_t
    pendingCount() const
    {
        std::lock_guard<std::mutex> lk(_mu);
        return _pending.size();
    }

    /** Duplicate deliveries discarded. */
    std::uint64_t
    duplicates() const
    {
        std::lock_guard<std::mutex> lk(_mu);
        return _duplicates;
    }

  private:
    const ItemConsumer &_consume;
    mutable std::mutex _mu;
    std::uint64_t _next = 0;
    std::uint64_t _duplicates = 0;
    std::map<std::uint64_t, ItemResult> _pending;
};

} // namespace fb::exec

#endif // FB_EXEC_ORDERED_EMITTER_HH
