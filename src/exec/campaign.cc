#include "exec/campaign.hh"

#include <atomic>
#include <exception>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "exec/ordered_emitter.hh"
#include "exec/pool.hh"
#include "support/logging.hh"

namespace fb::exec
{

/**
 * Run one item with the per-task exception guard: a throwing runner
 * becomes a failed result carrying the exception text instead of an
 * unwound campaign. The payload is deterministic as long as the
 * exception message is (it is part of the ordered output stream).
 * Exposed so the service worker can apply the identical guard with
 * the global item index (its inner campaign only sees lease-local
 * indices).
 */
ItemResult
runGuardedItem(const ItemRunner &run, std::uint64_t index, WorkerContext &ctx)
{
    try {
        return run(index, ctx);
    } catch (const std::exception &e) {
        ItemResult r;
        r.failed = true;
        std::ostringstream oss;
        oss << "EXCEPTION item=" << index << ": " << e.what() << "\n";
        r.payload = oss.str();
        return r;
    } catch (...) {
        ItemResult r;
        r.failed = true;
        std::ostringstream oss;
        oss << "EXCEPTION item=" << index << ": (non-standard exception)\n";
        r.payload = oss.str();
        return r;
    }
}

CampaignStats
runCampaign(std::uint64_t count, const CampaignOptions &options,
            const ItemRunner &run, const ItemConsumer &consume)
{
    FB_ASSERT(options.jobs >= 1, "campaign needs at least one job");
    CampaignStats stats;
    stats.items = count;

    // Campaign-wide interning: private per call unless the caller
    // threads a longer-lived cache through (a service worker keeps
    // one across all its leases).
    ProgramCache localPrograms;
    ProgramCache &programs =
        options.programs != nullptr ? *options.programs : localPrograms;

    if (options.jobs == 1 || count <= 1) {
        // Inline fast path: same machine reuse and interning, no
        // threads. The parallel path produces the same stream by
        // construction (pure runner + ordered delivery).
        MachinePool localMachines;
        MachinePool &machines = options.machines != nullptr
                                    ? *options.machines
                                    : localMachines;
        const std::uint64_t builds0 = machines.builds();
        const std::uint64_t reuses0 = machines.reuses();
        const std::uint64_t misses0 = programs.misses();
        const std::uint64_t hits0 = programs.hits();
        WorkerContext ctx{0, machines, programs};
        for (std::uint64_t i = 0; i < count; ++i) {
            ItemResult r = runGuardedItem(run, i, ctx);
            if (r.failed)
                ++stats.failures;
            consume(i, r);
        }
        stats.machinesBuilt = machines.builds() - builds0;
        stats.machinesReused = machines.reuses() - reuses0;
        stats.programsAssembled = programs.misses() - misses0;
        stats.programsInterned = programs.hits() - hits0;
        return stats;
    }

    const int jobs = static_cast<int>(
        std::min<std::uint64_t>(static_cast<std::uint64_t>(options.jobs),
                                count));
    std::vector<std::unique_ptr<MachinePool>> pools;
    pools.reserve(static_cast<std::size_t>(jobs));
    for (int j = 0; j < jobs; ++j)
        pools.push_back(std::make_unique<MachinePool>());

    const std::uint64_t misses0 = programs.misses();
    const std::uint64_t hits0 = programs.hits();
    OrderedEmitter emitter(consume);
    std::atomic<std::uint64_t> failures{0};
    std::uint64_t steals = 0;
    {
        WorkStealingPool pool(jobs, options.queueCapacity);
        for (std::uint64_t i = 0; i < count; ++i) {
            pool.submit([&, i](int worker) {
                WorkerContext ctx{
                    worker,
                    *pools[static_cast<std::size_t>(worker)],
                    programs};
                ItemResult r = runGuardedItem(run, i, ctx);
                if (r.failed)
                    failures.fetch_add(1, std::memory_order_relaxed);
                emitter.deliver(i, std::move(r));
            });
        }
        pool.drain();
        steals = pool.steals();
    }

    stats.failures = failures.load();
    stats.tasksStolen = steals;
    for (const auto &p : pools) {
        stats.machinesBuilt += p->builds();
        stats.machinesReused += p->reuses();
    }
    stats.programsAssembled = programs.misses() - misses0;
    stats.programsInterned = programs.hits() - hits0;
    return stats;
}

} // namespace fb::exec
