#include "exec/campaign.hh"

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "exec/pool.hh"
#include "support/logging.hh"

namespace fb::exec
{

namespace
{

/**
 * Reorders out-of-order completions into an ascending-index stream.
 * deliver() buffers a result, then flushes the contiguous prefix to
 * the consumer under the same lock — so consumer calls are both
 * ordered and serialized.
 */
class OrderedEmitter
{
  public:
    explicit OrderedEmitter(const ItemConsumer &consume)
        : _consume(consume)
    {
    }

    void
    deliver(std::uint64_t index, ItemResult result)
    {
        std::lock_guard<std::mutex> lk(_mu);
        _pending.emplace(index, std::move(result));
        while (!_pending.empty() &&
               _pending.begin()->first == _next) {
            _consume(_next, _pending.begin()->second);
            _pending.erase(_pending.begin());
            ++_next;
        }
    }

  private:
    const ItemConsumer &_consume;
    std::mutex _mu;
    std::uint64_t _next = 0;
    std::map<std::uint64_t, ItemResult> _pending;
};

} // namespace

CampaignStats
runCampaign(std::uint64_t count, const CampaignOptions &options,
            const ItemRunner &run, const ItemConsumer &consume)
{
    FB_ASSERT(options.jobs >= 1, "campaign needs at least one job");
    CampaignStats stats;
    stats.items = count;

    ProgramCache programs;

    if (options.jobs == 1 || count <= 1) {
        // Inline fast path: same machine reuse and interning, no
        // threads. The parallel path produces the same stream by
        // construction (pure runner + ordered delivery).
        MachinePool machines;
        WorkerContext ctx{0, machines, programs};
        for (std::uint64_t i = 0; i < count; ++i) {
            ItemResult r = run(i, ctx);
            if (r.failed)
                ++stats.failures;
            consume(i, r);
        }
        stats.machinesBuilt = machines.builds();
        stats.machinesReused = machines.reuses();
        stats.programsAssembled = programs.misses();
        stats.programsInterned = programs.hits();
        return stats;
    }

    const int jobs = static_cast<int>(
        std::min<std::uint64_t>(static_cast<std::uint64_t>(options.jobs),
                                count));
    std::vector<std::unique_ptr<MachinePool>> pools;
    pools.reserve(static_cast<std::size_t>(jobs));
    for (int j = 0; j < jobs; ++j)
        pools.push_back(std::make_unique<MachinePool>());

    OrderedEmitter emitter(consume);
    std::atomic<std::uint64_t> failures{0};
    std::uint64_t steals = 0;
    {
        WorkStealingPool pool(jobs, options.queueCapacity);
        for (std::uint64_t i = 0; i < count; ++i) {
            pool.submit([&, i](int worker) {
                WorkerContext ctx{
                    worker,
                    *pools[static_cast<std::size_t>(worker)],
                    programs};
                ItemResult r = run(i, ctx);
                if (r.failed)
                    failures.fetch_add(1, std::memory_order_relaxed);
                emitter.deliver(i, std::move(r));
            });
        }
        pool.drain();
        steals = pool.steals();
    }

    stats.failures = failures.load();
    stats.tasksStolen = steals;
    for (const auto &p : pools) {
        stats.machinesBuilt += p->builds();
        stats.machinesReused += p->reuses();
    }
    stats.programsAssembled = programs.misses();
    stats.programsInterned = programs.hits();
    return stats;
}

} // namespace fb::exec
