/**
 * @file
 * Host-thread sharding of one sim::Machine under a quantum-bounded
 * skew barrier (INTERNALS section 17).
 *
 * The machine's processors are partitioned into contiguous shards,
 * each advanced by one host thread through provably processor-private
 * cycles, while every globally visible action — memory and bus
 * traffic, barrier pulses, fault injections, watchdog deadlines,
 * checkpoints — still executes on the coordinating thread in exact
 * (cycle, proc-id) order. Results are therefore byte-identical to the
 * sequential core at any shard count; the differential suite in
 * tests/sharded_test.cc holds it to that.
 *
 * The rendezvous between coordinator and shard threads reuses the
 * split barriers from src/swbarrier/ — the paper's mechanism applied
 * to the simulation of itself: shards drift apart inside a window
 * (the "region") and synchronize only at its edges.
 */

#ifndef FB_EXEC_SHARDED_MACHINE_HH
#define FB_EXEC_SHARDED_MACHINE_HH

#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "sim/machine.hh"
#include "swbarrier/split_barrier.hh"

namespace fb::exec
{

/**
 * Runs one sim::Machine under MachineConfig::shardCount host threads
 * with MachineConfig::shardQuantum cycles of permitted skew.
 *
 * Falls back to the plain sequential run() — spawning no threads at
 * all — whenever sharding cannot apply: shardCount <= 1, shardQuantum
 * == 0, more shards than processors are requested (the excess would
 * idle; the count is clamped), barrier-state tracing is on, or
 * fast-forward is off. The fallback produces the same bytes, so
 * callers never need to care which path ran.
 *
 * The object is cheap and per-run: construct around a configured
 * machine (pooled machines work — shard fields are excluded from the
 * pool's structural key, so leases are shard-aware), call run(), let
 * it go out of scope. Worker threads live only for the duration of
 * run().
 */
class ShardedMachine final : public sim::ShardWindowDriver
{
  public:
    explicit ShardedMachine(sim::Machine &machine);
    ~ShardedMachine() override;

    ShardedMachine(const ShardedMachine &) = delete;
    ShardedMachine &operator=(const ShardedMachine &) = delete;

    /** Effective shard count after clamping (1 = sequential). */
    int shards() const { return _shards; }

    /** Run the machine to completion (threaded or fallback). */
    sim::RunResult run();

    // sim::ShardWindowDriver — called back by Machine::run().
    void advanceWindow(std::uint64_t stop) override;

  private:
    void workerLoop(int shard);

    sim::Machine &_machine;
    int _shards = 1;
    /** Per-shard [first, last) processor ranges. */
    std::vector<std::pair<int, int>> _ranges;

    // Two split-barrier rendezvous per window: "release" publishes
    // _windowStop to the shard threads, "join" hands their finished
    // processor state back to the coordinator. Both carry the
    // happens-before edges that make the handoff race-free.
    std::unique_ptr<sw::SplitBarrier> _release;
    std::unique_ptr<sw::SplitBarrier> _join;
    std::vector<std::thread> _workers;

    /** Window bound, written by the coordinator strictly before the
     * release rendezvous and read by workers strictly after it. */
    std::uint64_t _windowStop = 0;
    /** Set (under the same publication discipline) to end the run. */
    bool _shutdown = false;
};

} // namespace fb::exec

#endif // FB_EXEC_SHARDED_MACHINE_HH
