/**
 * @file
 * Work-stealing thread pool with bounded per-worker queues.
 */

#ifndef FB_EXEC_POOL_HH
#define FB_EXEC_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace fb::exec
{

/**
 * Fixed-size thread pool where every worker owns a deque of tasks:
 * submissions round-robin across the owners' queue fronts, an owner
 * pops its own front (FIFO), and an idle worker steals from another
 * queue's back. Stealing is what removes the batch barrier the old
 * fbfuzz --jobs loop had — a slow scenario occupies one worker while
 * the rest drain everything else, instead of the whole batch waiting
 * on its slowest member.
 *
 * Submission is bounded: once queueCapacity tasks per worker are
 * outstanding, submit() blocks. A campaign over millions of seeds
 * therefore streams through a constant-size window instead of
 * materializing every task up front.
 *
 * Each task receives the index of the worker running it, which is
 * how campaign tasks find their worker-private MachinePool.
 */
class WorkStealingPool
{
  public:
    using Task = std::function<void(int worker)>;

    /**
     * @param threads worker count (>= 1)
     * @param queue_capacity bound on queued tasks per worker
     */
    explicit WorkStealingPool(int threads,
                              std::size_t queue_capacity = 256);

    /** Drains every queued task, then joins the workers. */
    ~WorkStealingPool();

    WorkStealingPool(const WorkStealingPool &) = delete;
    WorkStealingPool &operator=(const WorkStealingPool &) = delete;

    /** Worker count. */
    int threads() const { return static_cast<int>(_workers.size()); }

    /**
     * Enqueue @p task; blocks while the pool is at capacity
     * (backpressure). Must not be called from a worker thread.
     */
    void submit(Task task);

    /** Block until every submitted task has finished executing. */
    void drain();

    /** Tasks taken from a queue other than the thief's own. */
    std::uint64_t steals() const;

  private:
    struct Worker
    {
        std::mutex mu;
        std::deque<Task> queue;
    };

    bool popOwn(std::size_t self, Task &out);
    bool steal(std::size_t self, Task &out);
    void workerLoop(std::size_t self);

    std::vector<std::unique_ptr<Worker>> _workers;
    std::vector<std::thread> _threads;

    // Counters and lifecycle, guarded by _mu. _queued counts tasks
    // sitting in queues (backpressure + worker wakeups); _inFlight
    // additionally counts tasks currently executing (drain).
    mutable std::mutex _mu;
    std::condition_variable _workCv;  ///< task became available
    std::condition_variable _spaceCv; ///< queue space freed
    std::condition_variable _idleCv;  ///< everything finished
    std::size_t _capacity;
    std::size_t _queued = 0;
    std::size_t _inFlight = 0;
    std::size_t _submitCursor = 0;
    std::uint64_t _steals = 0;
    bool _shutdown = false;
};

} // namespace fb::exec

#endif // FB_EXEC_POOL_HH
