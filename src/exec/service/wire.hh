/**
 * @file
 * Wire format and process-level fault injection for the campaign
 * service (coordinator <-> worker pipes).
 *
 * Every message travels as one length-prefixed, CRC-framed frame:
 *
 *     u32  payload length (bytes, little-endian)
 *     u32  CRC-32 of the payload (same polynomial as snapshots)
 *     ...  payload: u8 message type, then the type's fields
 *
 * The framing is deliberately paranoid: a byte flipped anywhere in a
 * frame fails the CRC, and an absurd length field (a garbled length
 * prefix) is rejected before any allocation. Either way the stream is
 * declared corrupt — after a framing error nothing downstream of it
 * can be trusted, so the coordinator's recovery unit is the whole
 * connection (kill the worker, respawn, reassign the lease), exactly
 * like the snapshot store's recovery unit is the whole generation.
 *
 * The injectable fault plan (`SvcFaultPlan`) mirrors the snapshot
 * layer's IoFaultShim: it models the process-level betrayals a real
 * fleet sees — a worker dying mid-item, a message lost or corrupted
 * in transit, a worker wedging silently — so tests and CI can drive
 * every recovery path deterministically.
 */

#ifndef FB_EXEC_SERVICE_WIRE_HH
#define FB_EXEC_SERVICE_WIRE_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace fb::exec::svc
{

/** Message types; the u8 on the wire. */
enum class MsgType : std::uint8_t
{
    Hello = 1,      ///< worker -> coord: {u64 pid}
    LeaseGrant = 2, ///< coord -> worker: {u64 leaseId, u64Vec items}
    Heartbeat = 3,  ///< worker -> coord: {u64 itemsDone}
    ItemStart = 4,  ///< worker -> coord: {u64 index}
    ItemDone = 5,   ///< worker -> coord: {u64 index, u8 failed, str payload}
    LeaseDone = 6,  ///< worker -> coord: {u64 leaseId}
    Shutdown = 7,   ///< coord -> worker: {}
};

const char *msgTypeName(MsgType type);

/**
 * One decoded message. A single struct covers every type: `a`/`b`
 * carry the numeric fields in declaration order, `flag` the bool,
 * `text` the payload string, `items` the lease item list. Unused
 * fields are zero/empty and not encoded.
 */
struct Message
{
    MsgType type = MsgType::Hello;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    bool flag = false;
    std::string text;
    std::vector<std::uint64_t> items;
};

/** Encode @p msg as one complete frame (length + CRC + payload). */
std::vector<std::uint8_t> encodeFrame(const Message &msg);

/**
 * Incremental frame decoder over a byte stream that arrives in
 * arbitrary chunks. feed() appends bytes; next() extracts the next
 * complete frame. A CRC mismatch, an oversize length prefix, or a
 * payload that does not decode latches the corrupt flag — the stream
 * is then permanently unusable (resynchronizing inside a corrupt
 * byte stream would be guessing).
 */
class FrameReader
{
  public:
    enum class Status
    {
        None,    ///< no complete frame buffered yet
        Ok,      ///< one frame decoded into the out-param
        Corrupt, ///< framing/CRC/decode failure; stream is dead
    };

    /** Frames larger than this are treated as a garbled length. */
    static constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

    void feed(const std::uint8_t *data, std::size_t len);

    Status next(Message &out, std::string &error);

    bool corrupt() const { return _corrupt; }

    std::uint64_t framesDecoded() const { return _frames; }

  private:
    std::vector<std::uint8_t> _buf;
    std::size_t _consumed = 0;
    bool _corrupt = false;
    std::uint64_t _frames = 0;
};

/**
 * Deterministic process/transport fault plan, parsed from a
 * `--svc-fault` spec: comma-separated directives, each `kind:N`.
 *
 *   kill:N      the worker SIGKILLs itself just after announcing its
 *               Nth item (1-based, counted per worker process).
 *               A transient crash, not a poison seed: the respawn
 *               completes the lease and the campaign.
 *   killitem:I  the worker SIGKILLs itself whenever it is about to
 *               run global item index I — in *every* incarnation,
 *               including the solo quarantine probe. This is the
 *               poison seed: two kills quarantine it, the solo probe
 *               dies too, and the item is reported as an artifact.
 *   drop:N      the worker's Nth outbound frame is silently discarded
 *               — a lost result message; the item is re-run after
 *               lease reassignment and the duplicate result is
 *               deduplicated downstream.
 *   garble:N    one byte of the worker's Nth outbound frame is
 *               flipped — the coordinator's CRC check must catch it
 *               and recycle the connection.
 *   stallhb:N   after sending its Nth heartbeat the worker wedges:
 *               it stops all outbound traffic and parks forever.
 *               Only the coordinator's heartbeat timeout can reclaim
 *               its lease.
 *
 * The transient directives (kill, drop, garble, stallhb) arm exactly
 * one worker incarnation: slot 0's first. Arming every worker would
 * let a reassigned item land on the same counter position of a
 * still-armed sibling and cascade an innocent seed into quarantine —
 * defeating the determinism contract the injector exists to test.
 * killitem is global (every incarnation of every worker, including
 * the solo probe): it models the item's own behaviour.
 */
struct SvcFaultPlan
{
    std::uint64_t killNthItem = 0;      ///< 1-based; 0 = never
    std::uint64_t killItemIndex = 0;    ///< armed iff killItemArmed
    bool killItemArmed = false;
    std::uint64_t dropNthFrame = 0;     ///< 1-based; 0 = never
    std::uint64_t garbleNthFrame = 0;   ///< 1-based; 0 = never
    std::uint64_t stallAfterHeartbeats = 0; ///< 1-based; 0 = never

    bool any() const
    {
        return killNthItem != 0 || killItemArmed || dropNthFrame != 0 ||
               garbleNthFrame != 0 || stallAfterHeartbeats != 0;
    }

    /**
     * The plan a respawned worker (incarnation > 0) runs under: only
     * the positional poison-seed fault survives; the transient
     * per-process faults fired on the first incarnation.
     */
    SvcFaultPlan
    respawnPlan() const
    {
        SvcFaultPlan p;
        p.killItemIndex = killItemIndex;
        p.killItemArmed = killItemArmed;
        return p;
    }

    static bool parse(const std::string &spec, SvcFaultPlan &out,
                      std::string &error);

    std::string toSpec() const;
};

} // namespace fb::exec::svc

#endif // FB_EXEC_SERVICE_WIRE_HH
