#include "exec/service/journal.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "support/strutil.hh"

namespace fb::exec::svc
{

namespace
{

/** Directory part of @p path, "." when it has none. */
std::string
dirnameOf(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

bool
fsyncPath(const std::string &path, std::string &error)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        error = path + ": open for fsync: " + std::strerror(errno);
        return false;
    }
    const bool ok = ::fsync(fd) == 0;
    if (!ok)
        error = path + ": fsync: " + std::strerror(errno);
    ::close(fd);
    return ok;
}

} // namespace

CursorJournal::~CursorJournal()
{
    if (_file != nullptr)
        std::fclose(_file);
}

std::uint64_t
CursorJournal::passingPrefix() const
{
    std::uint64_t n = 0;
    while (n < _state.size() &&
           _state[static_cast<std::size_t>(n)] == 'p')
        ++n;
    return n;
}

bool
CursorJournal::open(const std::string &path, const std::string &header,
                    std::uint64_t count, std::string &error)
{
    _path = path;
    _header = header;
    _state.assign(static_cast<std::size_t>(count), 0);
    _resumed = 0;

    std::ifstream in(_path);
    if (in) {
        std::string line;
        if (std::getline(in, line)) {
            if (line != header) {
                error = "--cursor " + _path +
                        " records a different campaign\n  journal:  " +
                        line + "\n  this run: " + header;
                return false;
            }
            // Any malformed line is a torn tail from a mid-write
            // kill: discard it and everything after it.
            while (std::getline(in, line)) {
                std::istringstream ls(line);
                std::string word;
                if (!(ls >> word))
                    break;
                if (word == "prefix") {
                    std::int64_t n = -1;
                    std::string extra;
                    if (!(ls >> n) || n < 0 ||
                        static_cast<std::uint64_t>(n) > count ||
                        (ls >> extra))
                        break;
                    for (std::int64_t i = 0; i < n; ++i)
                        _state[static_cast<std::size_t>(i)] = 'p';
                } else if (word == "done") {
                    std::int64_t idx = -1;
                    std::string verdict, extra;
                    if (!(ls >> idx >> verdict) || idx < 0 ||
                        static_cast<std::uint64_t>(idx) >= count ||
                        (verdict != "pass" && verdict != "fail") ||
                        (ls >> extra))
                        break;
                    _state[static_cast<std::size_t>(idx)] =
                        verdict == "pass" ? 'p' : 'f';
                } else {
                    break;
                }
            }
            for (char s : _state)
                if (s != 0)
                    ++_resumed;
        }
        in.close();
    }

    // Rewrite canonically: drops the torn tail and duplicate lines,
    // and folds the recorded prefix. Crash-safe (temp + rename).
    std::lock_guard<std::mutex> lk(_mu);
    return writeCanonical(error);
}

bool
CursorJournal::writeCanonical(std::string &error)
{
    if (_file != nullptr) {
        std::fclose(_file);
        _file = nullptr;
    }

    const std::string tmp = _path + ".tmp";
    {
        std::FILE *out = std::fopen(tmp.c_str(), "w");
        if (out == nullptr) {
            error = "cannot write " + tmp + ": " + std::strerror(errno);
            return false;
        }
        std::fprintf(out, "%s\n", _header.c_str());
        // Fold the passing prefix once it is worth a record; always
        // write it when at least one item is in it and compaction is
        // the caller (threshold crossed), otherwise plain lines keep
        // the journal trivially greppable for small sweeps.
        const std::uint64_t prefix = passingPrefix();
        std::uint64_t start = 0;
        if (prefix >= _threshold) {
            std::fprintf(out, "prefix %llu\n",
                         static_cast<unsigned long long>(prefix));
            start = prefix;
        }
        for (std::uint64_t i = start; i < _state.size(); ++i) {
            const char s = _state[static_cast<std::size_t>(i)];
            // 'f' records are dropped on purpose: failing items
            // re-run on resume either way, and re-appending them on
            // every resumed sweep is exactly the unbounded growth
            // this rewrite exists to stop.
            if (s == 'p')
                std::fprintf(out, "done %llu pass\n",
                             static_cast<unsigned long long>(i));
        }
        if (std::fflush(out) != 0 || ::fsync(::fileno(out)) != 0) {
            error = tmp + ": flush: " + std::strerror(errno);
            std::fclose(out);
            ::unlink(tmp.c_str());
            return false;
        }
        std::fclose(out);
    }
    if (::rename(tmp.c_str(), _path.c_str()) != 0) {
        error = "rename " + tmp + " -> " + _path + ": " +
                std::strerror(errno);
        ::unlink(tmp.c_str());
        return false;
    }
    std::string dirErr;
    (void)fsyncPath(dirnameOf(_path), dirErr);  // best-effort

    _file = std::fopen(_path.c_str(), "a");
    if (_file == nullptr) {
        error = "cannot append to " + _path + ": " + std::strerror(errno);
        return false;
    }
    _appended = 0;
    return true;
}

void
CursorJournal::record(std::uint64_t index, bool failed)
{
    std::lock_guard<std::mutex> lk(_mu);
    if (index >= _state.size() || _file == nullptr)
        return;
    _state[static_cast<std::size_t>(index)] = failed ? 'f' : 'p';
    std::fprintf(_file, "done %llu %s\n",
                 static_cast<unsigned long long>(index),
                 failed ? "fail" : "pass");
    std::fflush(_file);
    ++_appended;

    if (_appended >= _threshold && passingPrefix() >= _threshold) {
        std::string error;
        if (writeCanonical(error))
            ++_compactions;
        // On failure the append-mode file may be gone; journaling
        // degrades to best-effort rather than killing the campaign.
    }
}

} // namespace fb::exec::svc
