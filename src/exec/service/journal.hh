/**
 * @file
 * Crash-safe per-item verdict journal for resumable campaigns.
 *
 * This is the PR 4 fbfuzz sweep cursor promoted into a reusable
 * component shared by `fbfuzz --cursor` and the campaign-service
 * coordinator, extended with bounded growth. The file format:
 *
 *     <header line — binds the journal to its campaign parameters>
 *     prefix N                (optional; items [0, N) completed+passed)
 *     done I pass|fail        (one per completed item, any order)
 *
 * Verdicts are appended one line at a time and flushed, so a SIGKILL
 * can tear at most the final line; the loader treats the first
 * malformed line as the torn tail and discards it and everything
 * after it. Passing items are skipped on resume; failing items are
 * re-run so their reports (and the final failing set) match an
 * uninterrupted campaign — which also means a `done I fail` record
 * is semantically equivalent to no record at all, and compaction is
 * free to drop it.
 *
 * Unbounded growth (the PR 4 bug): every resumed sweep re-runs its
 * failing items and appends fresh verdict lines for them, so a
 * journal resumed k times carried k duplicate lines per failing item
 * — and the open-time canonical rewrite only helped across restarts,
 * not within a long run. Compaction now bounds the file: once the
 * contiguous passing prefix crosses a threshold, the journal is
 * rewritten as one `prefix N` line plus the out-of-prefix passes,
 * with the same write-temp / fsync / atomic-rename / fsync-directory
 * discipline as SnapshotStore — a crash mid-compaction leaves the
 * previous journal intact under its final name.
 */

#ifndef FB_EXEC_SERVICE_JOURNAL_HH
#define FB_EXEC_SERVICE_JOURNAL_HH

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

namespace fb::exec::svc
{

class CursorJournal
{
  public:
    CursorJournal() = default;
    ~CursorJournal();

    CursorJournal(const CursorJournal &) = delete;
    CursorJournal &operator=(const CursorJournal &) = delete;

    /**
     * Open (creating if absent) the journal at @p path for a campaign
     * of @p count items whose parameters render as @p header. An
     * existing journal with a different header is rejected — the
     * verdicts would not be comparable. On success the on-disk file
     * has been rewritten in canonical form (torn tail dropped,
     * duplicates collapsed, prefix folded). Returns false with a
     * diagnostic in @p error on header mismatch or I/O failure.
     */
    bool open(const std::string &path, const std::string &header,
              std::uint64_t count, std::string &error);

    /** 0 = not recorded, 'p' = passed, 'f' = failed. */
    char
    state(std::uint64_t index) const
    {
        std::lock_guard<std::mutex> lk(_mu);
        return index < _state.size()
                   ? _state[static_cast<std::size_t>(index)]
                   : 0;
    }

    /** Items with any recorded verdict when the journal was opened. */
    std::uint64_t resumedItems() const { return _resumed; }

    /**
     * Record a verdict: append one line, flush, and compact when the
     * passing prefix has crossed the threshold and enough lines have
     * accumulated to make the rewrite worthwhile. Thread-safe.
     */
    void record(std::uint64_t index, bool failed);

    /** Compactions performed over this journal's lifetime. */
    std::uint64_t compactions() const { return _compactions; }

    /**
     * Compaction trigger: rewrite once the contiguous passing prefix
     * is at least this many items AND at least this many lines have
     * been appended since the last canonical write. >= 1.
     */
    void
    setCompactionThreshold(std::uint64_t items)
    {
        _threshold = items < 1 ? 1 : items;
    }

    const std::string &path() const { return _path; }

  private:
    /** Longest contiguous run of 'p' from index 0. Lock held. */
    std::uint64_t passingPrefix() const;

    /** Canonical rewrite via temp + fsync + rename. Lock held. */
    bool writeCanonical(std::string &error);

    mutable std::mutex _mu;
    std::string _path;
    std::string _header;
    std::vector<char> _state;
    std::FILE *_file = nullptr;
    std::uint64_t _resumed = 0;
    std::uint64_t _appended = 0;
    std::uint64_t _compactions = 0;
    std::uint64_t _threshold = 4096;
};

} // namespace fb::exec::svc

#endif // FB_EXEC_SERVICE_JOURNAL_HH
