/**
 * @file
 * Crash-tolerant multi-process campaign coordinator.
 *
 * runCampaignService() is the process-level sibling of
 * exec::runCampaign(): the same (count, runner, consumer) contract
 * and the same seed-ordered, byte-deterministic output stream, but
 * the items execute in leased ranges across forked worker processes,
 * and the coordinator survives — by design, not by luck — the fault
 * classes the simulator already injects into itself:
 *
 *   worker death    detected via pipe EOF or heartbeat timeout;
 *                   the worker is respawned with exponential backoff
 *                   and the incomplete remainder of its lease is
 *                   deterministically reassigned
 *   lost messages   at-least-once re-execution after reassignment,
 *                   made exactly-once by OrderedEmitter deduplication
 *   corrupt frames  CRC-framed transport; a garbled stream recycles
 *                   the whole connection (kill + respawn + reassign)
 *   poison items    an item whose worker dies on it twice is
 *                   quarantined: probed once more solo on a fresh
 *                   worker, and if that dies too it is reported as a
 *                   first-class quarantine artifact instead of being
 *                   retried forever
 *   coordinator     per-item verdicts stream into the crash-safe
 *   SIGKILL         CursorJournal as the ordered prefix completes, so
 *                   a killed coordinator resumes a contiguous prefix
 *
 * Determinism contract: at any worker count, under any injected fault
 * schedule that does not quarantine an item, the consumer observes a
 * stream byte-identical to `runCampaign(jobs=1)` — quarantined items
 * differ only in their own payload (the artifact) and are explicitly
 * counted.
 *
 * The coordinator forks workers from its own image, so it must be
 * called from a single-threaded process (the standard fork rule).
 */

#ifndef FB_EXEC_SERVICE_COORDINATOR_HH
#define FB_EXEC_SERVICE_COORDINATOR_HH

#include <cstdint>
#include <functional>
#include <string>

#include "exec/campaign.hh"
#include "exec/service/journal.hh"
#include "exec/service/wire.hh"

namespace fb::exec::svc
{

/** Knobs for one campaign-service run. */
struct ServiceOptions
{
    /** Worker processes (>= 1). */
    int workers = 2;
    /** Items per lease; smaller = finer reassignment granularity. */
    std::uint64_t leaseItems = 16;
    /** Worker heartbeat cadence. */
    int heartbeatIntervalMs = 200;
    /**
     * Liveness timeout: a worker with no traffic for this long is
     * declared dead and SIGKILLed. Must comfortably exceed both the
     * heartbeat interval and the longest single item.
     */
    int heartbeatTimeoutMs = 30'000;
    /** First respawn delay; doubles per consecutive death. */
    int respawnBackoffInitialMs = 10;
    /** Respawn delay cap. */
    int respawnBackoffMaxMs = 2'000;
    /** Worker kills on one item before it is quarantined (>= 1). */
    int quarantineKillThreshold = 2;
    /**
     * Abort budget: total worker deaths before the service gives up
     * (a pathological fleet should fail loudly, not spin forever).
     */
    std::uint64_t maxWorkerDeaths = 1024;
    /** Threads inside each worker's campaign engine. */
    int innerJobs = 1;
    /** Injected process/transport faults (first incarnations). */
    SvcFaultPlan fault;
    /**
     * Renders the quarantine artifact payload for an item (the
     * consumer sees it as the item's result, `quarantined` set).
     * Null = a generic single-line artifact.
     */
    std::function<std::string(std::uint64_t index, int kills)>
        quarantineArtifact;
};

/** What the service did — the robustness counters are the story. */
struct ServiceStats
{
    std::uint64_t items = 0;
    std::uint64_t failures = 0;     ///< failed results (incl. quarantined)
    std::uint64_t quarantined = 0;  ///< items reported as artifacts
    std::uint64_t itemsSkippedByJournal = 0;
    std::uint64_t leasesGranted = 0;
    std::uint64_t leasesReassigned = 0;
    std::uint64_t workerDeaths = 0;
    std::uint64_t respawns = 0;
    std::uint64_t heartbeatTimeouts = 0;
    std::uint64_t corruptStreams = 0;
    std::uint64_t framesReceived = 0;
    std::uint64_t duplicateResults = 0;
    bool aborted = false;    ///< true: error holds why, output incomplete
    std::string error;
};

/**
 * Run items [0, count) across worker processes and deliver results
 * to @p consume in ascending index order (the runCampaign contract).
 * When @p journal is non-null, items it records as passed are not
 * re-run (the consumer sees an empty result for them, exactly like
 * `fbfuzz --cursor` resume), failed items re-run to reproduce their
 * reports, and every newly completed item is recorded as the ordered
 * prefix advances.
 */
ServiceStats runCampaignService(std::uint64_t count,
                                const ServiceOptions &options,
                                const ItemRunner &run,
                                const ItemConsumer &consume,
                                CursorJournal *journal = nullptr);

} // namespace fb::exec::svc

#endif // FB_EXEC_SERVICE_COORDINATOR_HH
