#include "exec/service/wire.hh"

#include <cstring>
#include <sstream>

#include "snapshot/codec.hh"
#include "support/strutil.hh"

namespace fb::exec::svc
{

const char *
msgTypeName(MsgType type)
{
    switch (type) {
      case MsgType::Hello: return "hello";
      case MsgType::LeaseGrant: return "lease-grant";
      case MsgType::Heartbeat: return "heartbeat";
      case MsgType::ItemStart: return "item-start";
      case MsgType::ItemDone: return "item-done";
      case MsgType::LeaseDone: return "lease-done";
      case MsgType::Shutdown: return "shutdown";
    }
    return "?";
}

std::vector<std::uint8_t>
encodeFrame(const Message &msg)
{
    snapshot::Encoder payload;
    payload.u8(static_cast<std::uint8_t>(msg.type));
    switch (msg.type) {
      case MsgType::Hello:
      case MsgType::Heartbeat:
      case MsgType::ItemStart:
      case MsgType::LeaseDone:
        payload.u64(msg.a);
        break;
      case MsgType::LeaseGrant:
        payload.u64(msg.a);
        payload.u64Vec(msg.items);
        break;
      case MsgType::ItemDone:
        payload.u64(msg.a);
        payload.b(msg.flag);
        payload.str(msg.text);
        break;
      case MsgType::Shutdown:
        break;
    }
    const std::vector<std::uint8_t> &body = payload.buffer();

    snapshot::Encoder frame;
    frame.reserve(8 + body.size());
    frame.u32(static_cast<std::uint32_t>(body.size()));
    frame.u32(snapshot::crc32(body));
    frame.bytes(body);
    return frame.take();
}

void
FrameReader::feed(const std::uint8_t *data, std::size_t len)
{
    if (_corrupt)
        return;
    // Compact the consumed prefix occasionally so the buffer does not
    // grow with the whole campaign's traffic.
    if (_consumed > 4096 && _consumed > _buf.size() / 2) {
        _buf.erase(_buf.begin(),
                   _buf.begin() + static_cast<std::ptrdiff_t>(_consumed));
        _consumed = 0;
    }
    _buf.insert(_buf.end(), data, data + len);
}

FrameReader::Status
FrameReader::next(Message &out, std::string &error)
{
    if (_corrupt) {
        error = "stream already corrupt";
        return Status::Corrupt;
    }
    const std::size_t avail = _buf.size() - _consumed;
    if (avail < 8)
        return Status::None;
    snapshot::Decoder hdr(_buf.data() + _consumed, 8);
    const std::uint32_t len = hdr.u32();
    const std::uint32_t want_crc = hdr.u32();
    if (len > kMaxFrameBytes) {
        _corrupt = true;
        std::ostringstream oss;
        oss << "frame length " << len << " exceeds the " << kMaxFrameBytes
            << "-byte cap (garbled length prefix)";
        error = oss.str();
        return Status::Corrupt;
    }
    if (avail < 8 + static_cast<std::size_t>(len))
        return Status::None;
    const std::uint8_t *body = _buf.data() + _consumed + 8;
    if (snapshot::crc32(body, len) != want_crc) {
        _corrupt = true;
        error = "frame CRC mismatch (corrupt transport)";
        return Status::Corrupt;
    }

    snapshot::Decoder d(body, len);
    const std::uint8_t raw = d.u8();
    Message msg;
    msg.type = static_cast<MsgType>(raw);
    switch (msg.type) {
      case MsgType::Hello:
      case MsgType::Heartbeat:
      case MsgType::ItemStart:
      case MsgType::LeaseDone:
        msg.a = d.u64();
        break;
      case MsgType::LeaseGrant:
        msg.a = d.u64();
        d.u64Vec(msg.items);
        break;
      case MsgType::ItemDone:
        msg.a = d.u64();
        msg.flag = d.b();
        msg.text = d.str();
        break;
      case MsgType::Shutdown:
        break;
      default:
        _corrupt = true;
        std::ostringstream oss;
        oss << "unknown message type " << static_cast<int>(raw);
        error = oss.str();
        return Status::Corrupt;
    }
    if (!d.done()) {
        _corrupt = true;
        std::ostringstream oss;
        oss << msgTypeName(msg.type) << " payload malformed ("
            << (d.ok() ? "trailing bytes" : "truncated fields") << ")";
        error = oss.str();
        return Status::Corrupt;
    }

    _consumed += 8 + static_cast<std::size_t>(len);
    ++_frames;
    out = std::move(msg);
    return Status::Ok;
}

bool
SvcFaultPlan::parse(const std::string &spec, SvcFaultPlan &out,
                    std::string &error)
{
    SvcFaultPlan plan;
    // Split manually: fb::split drops empty fields, but an empty
    // directive ("kill:5,,drop:1") is a typo worth diagnosing, not
    // something to silently skip.
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start <= spec.size()) {
        std::size_t pos = spec.find(',', start);
        if (pos == std::string::npos)
            pos = spec.size();
        parts.push_back(spec.substr(start, pos - start));
        start = pos + 1;
    }
    for (const std::string &part : parts) {
        if (part.empty()) {
            error = "empty directive in svc-fault spec";
            return false;
        }
        auto fields = split(part, ':');
        if (fields.size() != 2) {
            error = "svc-fault directive '" + part +
                    "' is not of the form kind:N";
            return false;
        }
        std::int64_t n = 0;
        if (!parseInt(fields[1], n) || n < 0) {
            error = "bad count in svc-fault directive '" + part + "'";
            return false;
        }
        const std::uint64_t v = static_cast<std::uint64_t>(n);
        if (fields[0] == "kill") {
            if (v == 0) {
                error = "kill:N needs N >= 1 (1-based item ordinal)";
                return false;
            }
            plan.killNthItem = v;
        } else if (fields[0] == "killitem") {
            plan.killItemIndex = v;
            plan.killItemArmed = true;
        } else if (fields[0] == "drop") {
            if (v == 0) {
                error = "drop:N needs N >= 1 (1-based frame ordinal)";
                return false;
            }
            plan.dropNthFrame = v;
        } else if (fields[0] == "garble") {
            if (v == 0) {
                error = "garble:N needs N >= 1 (1-based frame ordinal)";
                return false;
            }
            plan.garbleNthFrame = v;
        } else if (fields[0] == "stallhb") {
            if (v == 0) {
                error = "stallhb:N needs N >= 1 (1-based heartbeat)";
                return false;
            }
            plan.stallAfterHeartbeats = v;
        } else {
            error = "unknown svc-fault kind '" + fields[0] +
                    "' (kill, killitem, drop, garble, stallhb)";
            return false;
        }
    }
    if (!plan.any()) {
        error = "svc-fault spec names no faults";
        return false;
    }
    out = plan;
    return true;
}

std::string
SvcFaultPlan::toSpec() const
{
    std::ostringstream oss;
    const char *sep = "";
    if (killNthItem != 0) {
        oss << sep << "kill:" << killNthItem;
        sep = ",";
    }
    if (killItemArmed) {
        oss << sep << "killitem:" << killItemIndex;
        sep = ",";
    }
    if (dropNthFrame != 0) {
        oss << sep << "drop:" << dropNthFrame;
        sep = ",";
    }
    if (garbleNthFrame != 0) {
        oss << sep << "garble:" << garbleNthFrame;
        sep = ",";
    }
    if (stallAfterHeartbeats != 0) {
        oss << sep << "stallhb:" << stallAfterHeartbeats;
        sep = ",";
    }
    return oss.str();
}

} // namespace fb::exec::svc
