#include "exec/service/worker.hh"

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>

#include "exec/machine_pool.hh"
#include "exec/program_cache.hh"

namespace fb::exec::svc
{

namespace
{

using Clock = std::chrono::steady_clock;

/**
 * Outbound pipe end with the transport fault shim applied per frame.
 * Thread-safe: with innerJobs > 1 the campaign engine's workers
 * announce item starts concurrently.
 */
class Transport
{
  public:
    Transport(int fd, const SvcFaultPlan &fault)
        : _fd(fd), _fault(fault)
    {
    }

    /**
     * Send one frame, applying drop/garble/stall faults. Exits the
     * process with status 3 if the coordinator end is gone — there
     * is nobody left to report results to.
     */
    void
    send(const Message &msg)
    {
        std::lock_guard<std::mutex> lk(_mu);
        if (_wedged)
            return;
        if (msg.type == MsgType::Heartbeat) {
            ++_heartbeatsSent;
            if (_fault.stallAfterHeartbeats != 0 &&
                _heartbeatsSent >= _fault.stallAfterHeartbeats) {
                // A wedged worker sends nothing ever again — only the
                // coordinator's heartbeat timeout can reclaim it.
                // Send this last heartbeat, then fall silent.
                std::vector<std::uint8_t> f = encodeFrame(msg);
                writeAll(f);
                _wedged = true;
                return;
            }
        }
        ++_framesSent;
        if (_fault.dropNthFrame != 0 &&
            _framesSent == _fault.dropNthFrame)
            return;  // lost in transit
        std::vector<std::uint8_t> frame = encodeFrame(msg);
        if (_fault.garbleNthFrame != 0 &&
            _framesSent == _fault.garbleNthFrame && frame.size() > 8)
            frame[8] ^= 0x40;  // flip a payload bit; CRC must catch it
        writeAll(frame);
    }

    bool wedged() const
    {
        std::lock_guard<std::mutex> lk(_mu);
        return _wedged;
    }

  private:
    void
    writeAll(const std::vector<std::uint8_t> &bytes)
    {
        std::size_t off = 0;
        while (off < bytes.size()) {
            const ssize_t n =
                ::write(_fd, bytes.data() + off, bytes.size() - off);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                _exit(3);  // coordinator vanished (EPIPE & co.)
            }
            off += static_cast<std::size_t>(n);
        }
    }

    int _fd;
    SvcFaultPlan _fault;
    mutable std::mutex _mu;
    std::uint64_t _framesSent = 0;
    std::uint64_t _heartbeatsSent = 0;
    bool _wedged = false;
};

/** Park a wedged worker until the coordinator SIGKILLs it. */
[[noreturn]] void
parkForever()
{
    for (;;)
        ::pause();
}

} // namespace

int
workerMain(int readFd, int writeFd, const ItemRunner &runner,
           const WorkerConfig &config)
{
    // The coordinator owns SIGPIPE handling for its end; the worker
    // treats a dead pipe as an exit condition inside Transport.
    ::signal(SIGPIPE, SIG_IGN);

    Transport out(writeFd, config.fault);
    FrameReader in;

    // Survives across leases: the whole point of a resident worker.
    MachinePool machines;
    ProgramCache programs;

    std::uint64_t itemsDone = 0;
    // Incremented from the campaign engine's worker threads when
    // innerJobs > 1; the kill-on-Nth-item comparison must not race.
    std::atomic<std::uint64_t> itemsStarted{0};
    Clock::time_point lastBeat = Clock::now();

    {
        Message hello;
        hello.type = MsgType::Hello;
        hello.a = static_cast<std::uint64_t>(::getpid());
        out.send(hello);
    }

    auto maybeHeartbeat = [&]() {
        const auto now = Clock::now();
        if (now - lastBeat >=
            std::chrono::milliseconds(config.heartbeatIntervalMs)) {
            Message hb;
            hb.type = MsgType::Heartbeat;
            hb.a = itemsDone;
            out.send(hb);
            lastBeat = now;
            if (out.wedged())
                parkForever();
        }
    };

    auto runLease = [&](const Message &grant) {
        CampaignOptions copt;
        copt.jobs = config.innerJobs;
        copt.programs = &programs;
        copt.machines = &machines;
        const std::vector<std::uint64_t> &items = grant.items;
        runCampaign(
            items.size(), copt,
            [&](std::uint64_t k, WorkerContext &ctx) {
                const std::uint64_t index =
                    items[static_cast<std::size_t>(k)];
                const std::uint64_t started =
                    itemsStarted.fetch_add(1) + 1;
                // Announce the item before any chance of dying on it,
                // so the coordinator can attribute the corpse.
                Message start;
                start.type = MsgType::ItemStart;
                start.a = index;
                out.send(start);
                if ((config.fault.killNthItem != 0 &&
                     started == config.fault.killNthItem) ||
                    (config.fault.killItemArmed &&
                     index == config.fault.killItemIndex)) {
                    ::kill(::getpid(), SIGKILL);
                    parkForever();  // not reached
                }
                // Guard here with the *global* index: the inner
                // campaign's own guard would label an escaped
                // exception with the lease-local position k.
                return runGuardedItem(runner, index, ctx);
            },
            [&](std::uint64_t k, const ItemResult &r) {
                Message done;
                done.type = MsgType::ItemDone;
                done.a = items[static_cast<std::size_t>(k)];
                done.flag = r.failed;
                done.text = r.payload;
                out.send(done);
                ++itemsDone;
                maybeHeartbeat();
            });
        Message doneMsg;
        doneMsg.type = MsgType::LeaseDone;
        doneMsg.a = grant.a;
        out.send(doneMsg);
        if (out.wedged())
            parkForever();
    };

    for (;;) {
        struct pollfd pfd;
        pfd.fd = readFd;
        pfd.events = POLLIN;
        const int rv = ::poll(&pfd, 1, config.heartbeatIntervalMs);
        if (rv < 0) {
            if (errno == EINTR)
                continue;
            return 3;
        }
        maybeHeartbeat();
        if (rv == 0)
            continue;
        if ((pfd.revents & (POLLIN | POLLHUP)) == 0)
            return 3;

        std::uint8_t buf[4096];
        const ssize_t n = ::read(readFd, buf, sizeof buf);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return 3;
        }
        if (n == 0)
            return 0;  // coordinator closed our grant pipe: done
        in.feed(buf, static_cast<std::size_t>(n));

        Message msg;
        std::string err;
        for (;;) {
            const FrameReader::Status st = in.next(msg, err);
            if (st == FrameReader::Status::None)
                break;
            if (st == FrameReader::Status::Corrupt)
                return 3;  // grants unusable; die and be respawned
            if (msg.type == MsgType::Shutdown)
                return 0;
            if (msg.type == MsgType::LeaseGrant)
                runLease(msg);
        }
    }
}

} // namespace fb::exec::svc
