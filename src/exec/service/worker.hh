/**
 * @file
 * Campaign-service worker: the child-process half of the
 * coordinator/worker protocol.
 *
 * A worker is forked from the coordinator's process image, so it
 * executes the campaign's ItemRunner directly — no exec, no
 * serialization of the work itself, only of its results. Internally
 * each lease runs through the existing in-process campaign engine
 * (work-stealing pool when innerJobs > 1, plus a MachinePool and
 * ProgramCache that persist across leases), so the service composes
 * with — rather than replaces — the PR 5 execution engine.
 */

#ifndef FB_EXEC_SERVICE_WORKER_HH
#define FB_EXEC_SERVICE_WORKER_HH

#include <cstdint>

#include "exec/campaign.hh"
#include "exec/service/wire.hh"

namespace fb::exec::svc
{

/** Per-worker knobs, fixed at spawn time by the coordinator. */
struct WorkerConfig
{
    /** Heartbeat cadence while idle and between items. */
    int heartbeatIntervalMs = 200;
    /** Threads inside the worker's own campaign engine (>= 1). */
    int innerJobs = 1;
    /** Fault plan for this incarnation (already incarnation-filtered). */
    SvcFaultPlan fault;
};

/**
 * Run the worker protocol loop over the two pipe ends until the
 * coordinator sends Shutdown or closes the pipe. Never throws; a
 * runner exception becomes a failed item result (the campaign
 * engine's per-task guard). Returns the worker's exit status
 * (0 = clean shutdown, 3 = coordinator vanished mid-write).
 */
int workerMain(int readFd, int writeFd, const ItemRunner &runner,
               const WorkerConfig &config);

} // namespace fb::exec::svc

#endif // FB_EXEC_SERVICE_WORKER_HH
