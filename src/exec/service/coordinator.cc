#include "exec/service/coordinator.hh"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "exec/ordered_emitter.hh"
#include "exec/service/worker.hh"
#include "support/logging.hh"

namespace fb::exec::svc
{

namespace
{

using Clock = std::chrono::steady_clock;
using Millis = std::chrono::milliseconds;

/** One leased range of work (explicit indexes; may be sparse). */
struct Lease
{
    std::uint64_t id = 0;
    std::vector<std::uint64_t> items;
    bool solo = false;  ///< quarantine probe for a single suspect item
};

/** Coordinator-side state of one worker slot. */
struct WorkerSlot
{
    int slot = 0;
    pid_t pid = -1;
    int rfd = -1;  ///< worker -> coordinator (results)
    int wfd = -1;  ///< coordinator -> worker (grants)
    bool alive = false;
    FrameReader reader;
    bool hasLease = false;
    Lease lease;
    /** Items announced via ItemStart with no ItemDone yet. */
    std::unordered_set<std::uint64_t> inFlight;
    Clock::time_point lastActivity{};
    int incarnation = 0;
    int consecutiveDeaths = 0;
    /** When a scheduled respawn becomes due (dead slots only). */
    Clock::time_point spawnDue{};
    bool spawnScheduled = false;
};

struct Coordinator
{
    std::uint64_t count;
    const ServiceOptions &opt;
    const ItemRunner &runner;
    CursorJournal *journal;
    ServiceStats stats;

    OrderedEmitter emitter;
    std::deque<Lease> pending;
    std::vector<WorkerSlot> slots;
    std::unordered_map<std::uint64_t, int> killCounts;
    std::uint64_t nextLeaseId = 1;

    Coordinator(std::uint64_t n, const ServiceOptions &o,
                const ItemRunner &r, const ItemConsumer &consume,
                CursorJournal *j)
        : count(n), opt(o), runner(r), journal(j), emitter(consume)
    {
    }

    bool
    done() const
    {
        return emitter.next() >= count;
    }

    void
    abort(const std::string &why)
    {
        if (!stats.aborted) {
            stats.aborted = true;
            stats.error = why;
            warn("campaign service aborted: " + why);
        }
    }

    std::string
    artifactFor(std::uint64_t index, int kills) const
    {
        if (opt.quarantineArtifact)
            return opt.quarantineArtifact(index, kills);
        std::ostringstream oss;
        oss << "QUARANTINE item=" << index << " kills=" << kills
            << " (worker died on this item " << kills
            << " times; isolated and withheld from further leases)\n";
        return oss.str();
    }

    void
    deliverQuarantine(std::uint64_t index)
    {
        ItemResult r;
        r.failed = true;
        r.quarantined = true;
        r.payload = artifactFor(index, killCounts[index]);
        ++stats.quarantined;
        if (emitter.deliver(index, std::move(r)))
            warnRatelimited("svc-quarantine",
                            "campaign service: quarantined item " +
                                std::to_string(index),
                            1);
    }

    /**
     * Build the initial lease queue, pre-delivering empty results for
     * journal-passed items so the ordered stream stays contiguous.
     */
    void
    buildLeases()
    {
        std::vector<std::uint64_t> todo;
        for (std::uint64_t i = 0; i < count; ++i) {
            if (journal != nullptr && journal->state(i) == 'p') {
                ++stats.itemsSkippedByJournal;
                emitter.deliver(i, ItemResult{});
                continue;
            }
            todo.push_back(i);
        }
        const std::uint64_t chunk = std::max<std::uint64_t>(
            1, opt.leaseItems);
        for (std::size_t off = 0; off < todo.size();
             off += static_cast<std::size_t>(chunk)) {
            Lease lease;
            lease.id = nextLeaseId++;
            const std::size_t end = std::min(
                todo.size(), off + static_cast<std::size_t>(chunk));
            lease.items.assign(todo.begin() + static_cast<std::ptrdiff_t>(off),
                               todo.begin() + static_cast<std::ptrdiff_t>(end));
            pending.push_back(std::move(lease));
        }
    }

    bool
    spawn(WorkerSlot &w)
    {
        int c2w[2], w2c[2];
        if (::pipe(c2w) != 0)
            return false;
        if (::pipe(w2c) != 0) {
            ::close(c2w[0]);
            ::close(c2w[1]);
            return false;
        }
        const pid_t pid = ::fork();
        if (pid < 0) {
            ::close(c2w[0]);
            ::close(c2w[1]);
            ::close(w2c[0]);
            ::close(w2c[1]);
            return false;
        }
        if (pid == 0) {
            // Child: drop every coordinator-side and sibling fd so a
            // sibling's death is visible as EOF on its own pipe, then
            // run the worker loop on our two ends.
            for (const WorkerSlot &other : slots) {
                if (other.rfd >= 0)
                    ::close(other.rfd);
                if (other.wfd >= 0)
                    ::close(other.wfd);
            }
            ::close(c2w[1]);
            ::close(w2c[0]);
            WorkerConfig cfg;
            cfg.heartbeatIntervalMs = opt.heartbeatIntervalMs;
            cfg.innerJobs = opt.innerJobs;
            // Transient faults (kill/drop/garble/stallhb) arm exactly
            // one incarnation of one worker: slot 0's first. Arming
            // every first incarnation lets a reassigned item land on
            // the same counter position of a still-armed sibling and
            // cascade an innocent seed into quarantine. Only killitem
            // is global — it is the item's own property, and
            // quarantining it is the point.
            cfg.fault = w.slot == 0 && w.incarnation == 0
                            ? opt.fault
                            : opt.fault.respawnPlan();
            _exit(workerMain(c2w[0], w2c[1], runner, cfg));
        }
        ::close(c2w[0]);
        ::close(w2c[1]);
        w.pid = pid;
        w.rfd = w2c[0];
        w.wfd = c2w[1];
        w.alive = true;
        w.reader = FrameReader();
        w.hasLease = false;
        w.inFlight.clear();
        w.lastActivity = Clock::now();
        w.spawnScheduled = false;
        if (w.incarnation > 0)
            ++stats.respawns;
        ++w.incarnation;
        return true;
    }

    /** Reap, classify in-flight casualties, requeue the remainder. */
    void
    handleDeath(WorkerSlot &w, const char *why)
    {
        if (!w.alive)
            return;
        if (w.pid > 0) {
            ::kill(w.pid, SIGKILL);
            int status = 0;
            while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
            }
        }
        if (w.rfd >= 0)
            ::close(w.rfd);
        if (w.wfd >= 0)
            ::close(w.wfd);
        w.rfd = w.wfd = -1;
        w.alive = false;
        w.pid = -1;
        ++w.consecutiveDeaths;
        ++stats.workerDeaths;
        warnRatelimited(
            "svc-worker-death",
            "campaign service: worker " + std::to_string(w.slot) +
                " lost (" + why + "); respawning and reassigning",
            10);
        if (stats.workerDeaths > opt.maxWorkerDeaths)
            abort("worker-death budget exhausted (" +
                  std::to_string(stats.workerDeaths) + " deaths)");

        if (w.hasLease) {
            // Anything announced but unfinished died with the worker.
            for (std::uint64_t i : w.inFlight)
                ++killCounts[i];

            std::vector<std::uint64_t> normal;
            std::vector<std::uint64_t> suspects;
            for (std::uint64_t i : w.lease.items) {
                if (emitter.seen(i))
                    continue;
                const auto it = killCounts.find(i);
                const int kills = it == killCounts.end() ? 0 : it->second;
                if (kills > opt.quarantineKillThreshold) {
                    // The solo probe died too: first-class artifact,
                    // never leased again.
                    deliverQuarantine(i);
                } else if (kills == opt.quarantineKillThreshold) {
                    suspects.push_back(i);
                } else {
                    normal.push_back(i);
                }
            }
            // Suspects get solo probes ahead of everything (they gate
            // the ordered prefix); the innocent remainder re-runs as
            // one reassigned lease. push_front keeps the oldest
            // indexes first so the contiguous prefix — and with it
            // the journal — advances as fast as possible.
            if (!normal.empty()) {
                Lease lease;
                lease.id = nextLeaseId++;
                lease.items = std::move(normal);
                pending.push_front(std::move(lease));
                ++stats.leasesReassigned;
            }
            for (auto it = suspects.rbegin(); it != suspects.rend();
                 ++it) {
                Lease lease;
                lease.id = nextLeaseId++;
                lease.items = {*it};
                lease.solo = true;
                pending.push_front(std::move(lease));
                ++stats.leasesReassigned;
            }
            w.hasLease = false;
            w.inFlight.clear();
        }

        // Exponential-backoff respawn, executed by the main loop when
        // due (the coordinator never sleeps inline).
        int backoff = opt.respawnBackoffInitialMs;
        for (int d = 1; d < w.consecutiveDeaths &&
                        backoff < opt.respawnBackoffMaxMs;
             ++d)
            backoff *= 2;
        backoff = std::min(backoff, opt.respawnBackoffMaxMs);
        w.spawnDue = Clock::now() + Millis(backoff);
        w.spawnScheduled = true;
    }

    void
    grant(WorkerSlot &w)
    {
        Lease lease = std::move(pending.front());
        pending.pop_front();
        Message msg;
        msg.type = MsgType::LeaseGrant;
        msg.a = lease.id;
        msg.items = lease.items;
        w.lease = std::move(lease);
        w.hasLease = true;
        w.inFlight.clear();
        ++stats.leasesGranted;
        if (!writeFrame(w, msg))
            handleDeath(w, "grant write failed");
    }

    bool
    writeFrame(WorkerSlot &w, const Message &msg)
    {
        const std::vector<std::uint8_t> frame = encodeFrame(msg);
        std::size_t off = 0;
        while (off < frame.size()) {
            const ssize_t n = ::write(w.wfd, frame.data() + off,
                                      frame.size() - off);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                return false;
            }
            off += static_cast<std::size_t>(n);
        }
        return true;
    }

    void
    handleMessage(WorkerSlot &w, const Message &msg)
    {
        ++stats.framesReceived;
        w.lastActivity = Clock::now();
        switch (msg.type) {
          case MsgType::Hello:
          case MsgType::Heartbeat:
            break;
          case MsgType::ItemStart:
            w.inFlight.insert(msg.a);
            break;
          case MsgType::ItemDone: {
            w.inFlight.erase(msg.a);
            ItemResult r;
            r.failed = msg.flag;
            r.payload = msg.text;
            if (!emitter.deliver(msg.a, std::move(r)))
                ++stats.duplicateResults;
            break;
          }
          case MsgType::LeaseDone: {
            if (!w.hasLease || msg.a != w.lease.id)
                break;
            // A lease can "complete" with undelivered items when the
            // transport dropped result frames: re-lease exactly the
            // holes. The re-run results deduplicate downstream, so
            // at-least-once stays byte-identical.
            std::vector<std::uint64_t> holes;
            for (std::uint64_t i : w.lease.items)
                if (!emitter.seen(i))
                    holes.push_back(i);
            if (!holes.empty()) {
                Lease lease;
                lease.id = nextLeaseId++;
                lease.items = std::move(holes);
                pending.push_front(std::move(lease));
                ++stats.leasesReassigned;
            }
            w.hasLease = false;
            w.inFlight.clear();
            // A completed lease proves the worker healthy: reset the
            // respawn backoff so an isolated early crash does not tax
            // the rest of a long campaign.
            w.consecutiveDeaths = 0;
            break;
          }
          case MsgType::LeaseGrant:
          case MsgType::Shutdown:
            // Workers never send these; treat as protocol corruption.
            ++stats.corruptStreams;
            handleDeath(w, "protocol violation");
            break;
        }
    }

    void
    drainReadable(WorkerSlot &w)
    {
        std::uint8_t buf[16384];
        const ssize_t n = ::read(w.rfd, buf, sizeof buf);
        if (n < 0) {
            if (errno == EINTR || errno == EAGAIN)
                return;
            handleDeath(w, "read error");
            return;
        }
        if (n == 0) {
            handleDeath(w, "pipe EOF");
            return;
        }
        w.reader.feed(buf, static_cast<std::size_t>(n));
        Message msg;
        std::string err;
        for (;;) {
            const FrameReader::Status st = w.reader.next(msg, err);
            if (st == FrameReader::Status::None)
                break;
            if (st == FrameReader::Status::Corrupt) {
                ++stats.corruptStreams;
                warnRatelimited("svc-corrupt-frame",
                                "campaign service: worker " +
                                    std::to_string(w.slot) +
                                    " stream corrupt (" + err +
                                    "); recycling the connection",
                                1);
                handleDeath(w, "corrupt frame");
                break;
            }
            handleMessage(w, msg);
            if (!w.alive)
                break;  // handleMessage may have recycled the worker
        }
    }

    void
    shutdownWorkers()
    {
        Message bye;
        bye.type = MsgType::Shutdown;
        for (WorkerSlot &w : slots) {
            if (!w.alive)
                continue;
            (void)writeFrame(w, bye);
            if (w.wfd >= 0)
                ::close(w.wfd);
            w.wfd = -1;
        }
        // Grace period: workers exit on Shutdown or grant-pipe EOF.
        const Clock::time_point deadline =
            Clock::now() + Millis(2000);
        for (WorkerSlot &w : slots) {
            if (!w.alive)
                continue;
            for (;;) {
                int status = 0;
                const pid_t got = ::waitpid(w.pid, &status, WNOHANG);
                if (got == w.pid || got < 0)
                    break;
                if (Clock::now() >= deadline) {
                    ::kill(w.pid, SIGKILL);
                    while (::waitpid(w.pid, &status, 0) < 0 &&
                           errno == EINTR) {
                    }
                    break;
                }
                ::poll(nullptr, 0, 10);
            }
            if (w.rfd >= 0)
                ::close(w.rfd);
            w.rfd = -1;
            w.alive = false;
            w.pid = -1;
        }
    }

    void
    run()
    {
        buildLeases();
        if (done())
            return;

        slots.resize(static_cast<std::size_t>(opt.workers));
        for (std::size_t i = 0; i < slots.size(); ++i)
            slots[i].slot = static_cast<int>(i);
        for (WorkerSlot &w : slots) {
            if (!spawn(w)) {
                abort("cannot spawn worker: " +
                      std::string(std::strerror(errno)));
                return;
            }
        }

        const Millis hbTimeout(opt.heartbeatTimeoutMs);
        while (!done() && !stats.aborted) {
            const Clock::time_point now = Clock::now();

            // Respawns that have served their backoff.
            for (WorkerSlot &w : slots) {
                if (!w.alive && w.spawnScheduled && now >= w.spawnDue) {
                    if (!spawn(w))
                        abort("cannot respawn worker: " +
                              std::string(std::strerror(errno)));
                }
            }

            // Hand out work.
            for (WorkerSlot &w : slots) {
                if (pending.empty())
                    break;
                if (w.alive && !w.hasLease)
                    grant(w);
            }

            // Wait for traffic, the next heartbeat deadline, or the
            // next due respawn — whichever comes first.
            std::vector<struct pollfd> pfds;
            std::vector<WorkerSlot *> owners;
            long long timeout = 200;
            auto clampDeadline = [&](Clock::time_point when) {
                const long long left =
                    std::chrono::duration_cast<Millis>(when - now)
                        .count();
                timeout = std::min(timeout, std::max(1LL, left));
            };
            for (WorkerSlot &w : slots) {
                if (w.alive) {
                    pfds.push_back({w.rfd, POLLIN, 0});
                    owners.push_back(&w);
                    clampDeadline(w.lastActivity + hbTimeout);
                } else if (w.spawnScheduled) {
                    clampDeadline(w.spawnDue);
                }
            }
            if (!pfds.empty()) {
                const int rv = ::poll(pfds.data(),
                                      static_cast<nfds_t>(pfds.size()),
                                      static_cast<int>(timeout));
                if (rv < 0 && errno != EINTR) {
                    abort("poll: " + std::string(std::strerror(errno)));
                    break;
                }
                for (std::size_t i = 0; i < pfds.size(); ++i) {
                    if (!owners[i]->alive)
                        continue;
                    if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR))
                        drainReadable(*owners[i]);
                }
            } else {
                ::poll(nullptr, 0, static_cast<int>(timeout));
            }

            // Liveness: silence beyond the timeout means a wedged or
            // netherworld worker — reclaim its lease the hard way.
            const Clock::time_point after = Clock::now();
            for (WorkerSlot &w : slots) {
                if (w.alive && after - w.lastActivity > hbTimeout) {
                    ++stats.heartbeatTimeouts;
                    warnRatelimited(
                        "svc-hb-timeout",
                        "campaign service: worker " +
                            std::to_string(w.slot) +
                            " heartbeat timeout; killing and "
                            "reassigning",
                        1);
                    handleDeath(w, "heartbeat timeout");
                }
            }
        }

        shutdownWorkers();
    }
};

} // namespace

ServiceStats
runCampaignService(std::uint64_t count, const ServiceOptions &options,
                   const ItemRunner &run, const ItemConsumer &consume,
                   CursorJournal *journal)
{
    FB_ASSERT(options.workers >= 1, "campaign service needs a worker");
    FB_ASSERT(options.quarantineKillThreshold >= 1,
              "quarantine threshold must be >= 1");

    // A dead worker must surface as EPIPE/EOF, not a fatal signal.
    struct sigaction ignore{}, oldPipe{};
    ignore.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &ignore, &oldPipe);

    ServiceStats statsOut;
    {
        std::vector<bool> skipped(static_cast<std::size_t>(count), false);
        if (journal != nullptr)
            for (std::uint64_t i = 0; i < count; ++i)
                skipped[static_cast<std::size_t>(i)] =
                    journal->state(i) == 'p';

        std::uint64_t failures = 0;
        ItemConsumer wrapped = [&](std::uint64_t i,
                                   const ItemResult &r) {
            if (r.failed)
                ++failures;
            if (journal != nullptr &&
                !skipped[static_cast<std::size_t>(i)])
                journal->record(i, r.failed);
            consume(i, r);
        };

        Coordinator coord(count, options, run, wrapped, journal);
        coord.stats.items = count;
        coord.run();
        coord.stats.failures = failures;
        statsOut = coord.stats;
    }

    ::sigaction(SIGPIPE, &oldPipe, nullptr);
    return statsOut;
}

} // namespace fb::exec::svc
