#include "exec/machine_pool.hh"

namespace fb::exec
{

MachinePool::Lease
MachinePool::acquire(const sim::MachineConfig &config)
{
    const std::uint64_t key = sim::Machine::structuralKey(config);
    for (std::size_t i = 0; i < _free.size(); ++i) {
        if (_free[i].first != key)
            continue;
        std::unique_ptr<sim::Machine> m = std::move(_free[i].second);
        _free.erase(_free.begin() + static_cast<std::ptrdiff_t>(i));
        m->reset(config);
        ++_reuses;
        return Lease(this, std::move(m), key);
    }
    ++_builds;
    return Lease(this, std::make_unique<sim::Machine>(config), key);
}

void
MachinePool::put(std::uint64_t key, std::unique_ptr<sim::Machine> machine)
{
    if (_free.size() >= maxIdle)
        return; // drop: destructor frees the machine
    _free.emplace_back(key, std::move(machine));
}

} // namespace fb::exec
