#include "exec/sharded_machine.hh"

#include <algorithm>

#include "support/logging.hh"
#include "swbarrier/factory.hh"

namespace fb::exec
{

ShardedMachine::ShardedMachine(sim::Machine &machine)
    : _machine(machine)
{
    const sim::MachineConfig &cfg = machine.config();
    int shards = std::clamp(cfg.shardCount, 1, cfg.numProcessors);
    // Tracing needs the loop body on every cycle and disables
    // fast-forward, which the window logic is built on; a zero
    // quantum is the documented "off" switch.
    if (cfg.shardQuantum == 0 || cfg.traceBarrierStates ||
        !cfg.fastForward)
        shards = 1;
    _shards = shards;
    if (_shards <= 1)
        return;

    // Contiguous ranges, remainder spread over the leading shards.
    const int n = cfg.numProcessors;
    const int base = n / _shards;
    const int extra = n % _shards;
    int next = 0;
    for (int s = 0; s < _shards; ++s) {
        const int len = base + (s < extra ? 1 : 0);
        _ranges.emplace_back(next, next + len);
        next += len;
    }
    FB_ASSERT(next == n, "shard ranges must cover every processor");

    _release = sw::makeBarrier(sw::BarrierKind::Centralized, _shards);
    _join = sw::makeBarrier(sw::BarrierKind::Centralized, _shards);
}

ShardedMachine::~ShardedMachine()
{
    // run() always joins its workers before returning; a destructor
    // with live workers means run() never ran to completion, which
    // only happens on the panic/abort path.
    FB_ASSERT(_workers.empty(),
              "ShardedMachine destroyed with live workers");
}

sim::RunResult
ShardedMachine::run()
{
    if (_shards <= 1)
        return _machine.run();

    _shutdown = false;
    _workers.reserve(static_cast<std::size_t>(_shards - 1));
    for (int s = 1; s < _shards; ++s)
        _workers.emplace_back([this, s] { workerLoop(s); });

    sim::RunResult result = _machine.run(this);

    // Final rendezvous: the shutdown flag is published exactly like a
    // window bound; workers observe it after the release barrier and
    // exit without touching the join barrier.
    _shutdown = true;
    _release->synchronize(0);
    for (auto &w : _workers)
        w.join();
    _workers.clear();
    return result;
}

void
ShardedMachine::advanceWindow(std::uint64_t stop)
{
    // Publish the bound, release the shard threads, advance our own
    // shard (the coordinator doubles as shard 0 — one fewer thread
    // and the cache-warm half of the machine stays on this core),
    // then wait for the others. The split barriers carry the
    // happens-before edges: the release arrive orders _windowStop
    // before any worker reads it, and the join wait orders every
    // worker's processor mutations before the coordinator resumes
    // the global loop.
    _windowStop = stop;
    _release->synchronize(0);
    _machine.advanceShardRange(_ranges[0].first, _ranges[0].second,
                               stop);
    _join->synchronize(0);
}

void
ShardedMachine::workerLoop(int shard)
{
    const auto range = _ranges[static_cast<std::size_t>(shard)];
    for (;;) {
        _release->synchronize(shard);
        if (_shutdown)
            return;
        _machine.advanceShardRange(range.first, range.second,
                                   _windowStop);
        _join->synchronize(shard);
    }
}

} // namespace fb::exec
