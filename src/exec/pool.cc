#include "exec/pool.hh"

#include "support/logging.hh"

namespace fb::exec
{

WorkStealingPool::WorkStealingPool(int threads,
                                   std::size_t queue_capacity)
    : _capacity(queue_capacity)
{
    FB_ASSERT(threads >= 1, "pool needs at least one worker");
    FB_ASSERT(queue_capacity >= 1, "queue capacity must be >= 1");
    _workers.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t)
        _workers.push_back(std::make_unique<Worker>());
    _threads.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t)
        _threads.emplace_back(
            [this, t] { workerLoop(static_cast<std::size_t>(t)); });
}

WorkStealingPool::~WorkStealingPool()
{
    {
        std::lock_guard<std::mutex> lk(_mu);
        _shutdown = true;
    }
    _workCv.notify_all();
    _spaceCv.notify_all();
    for (std::thread &t : _threads)
        t.join();
}

void
WorkStealingPool::submit(Task task)
{
    std::size_t target;
    {
        std::unique_lock<std::mutex> lk(_mu);
        _spaceCv.wait(lk, [this] {
            return _queued < _capacity * _workers.size() || _shutdown;
        });
        if (_shutdown)
            return; // destructor racing a submitter: drop the task
        ++_queued;
        ++_inFlight;
        target = _submitCursor++ % _workers.size();
    }
    {
        Worker &w = *_workers[target];
        std::lock_guard<std::mutex> lk(w.mu);
        w.queue.push_back(std::move(task));
    }
    _workCv.notify_one();
}

void
WorkStealingPool::drain()
{
    std::unique_lock<std::mutex> lk(_mu);
    _idleCv.wait(lk, [this] { return _inFlight == 0; });
}

std::uint64_t
WorkStealingPool::steals() const
{
    std::lock_guard<std::mutex> lk(_mu);
    return _steals;
}

bool
WorkStealingPool::popOwn(std::size_t self, Task &out)
{
    Worker &w = *_workers[self];
    std::lock_guard<std::mutex> lk(w.mu);
    if (w.queue.empty())
        return false;
    out = std::move(w.queue.front());
    w.queue.pop_front();
    return true;
}

bool
WorkStealingPool::steal(std::size_t self, Task &out)
{
    const std::size_t n = _workers.size();
    for (std::size_t off = 1; off < n; ++off) {
        Worker &victim = *_workers[(self + off) % n];
        std::lock_guard<std::mutex> lk(victim.mu);
        if (victim.queue.empty())
            continue;
        out = std::move(victim.queue.back());
        victim.queue.pop_back();
        return true;
    }
    return false;
}

void
WorkStealingPool::workerLoop(std::size_t self)
{
    for (;;) {
        Task task;
        bool have = popOwn(self, task);
        bool stolen = false;
        if (!have) {
            have = stolen = steal(self, task);
        }
        if (!have) {
            std::unique_lock<std::mutex> lk(_mu);
            // _queued > 0 without a poppable task just means a racing
            // submit has incremented the counter but not yet pushed,
            // or another worker got there first — loop and retry.
            _workCv.wait(lk, [this] {
                return _queued > 0 || _shutdown;
            });
            if (_shutdown && _queued == 0)
                return;
            continue;
        }
        {
            std::lock_guard<std::mutex> lk(_mu);
            --_queued;
            if (stolen)
                ++_steals;
        }
        _spaceCv.notify_one();
        task(static_cast<int>(self));
        {
            std::lock_guard<std::mutex> lk(_mu);
            --_inFlight;
            if (_inFlight == 0)
                _idleCv.notify_all();
        }
    }
}

} // namespace fb::exec
