/**
 * @file
 * Deterministic campaign execution engine: runs a seed-indexed
 * family of scenario tasks across a work-stealing pool with
 * machine reuse, delivering results in seed order.
 */

#ifndef FB_EXEC_CAMPAIGN_HH
#define FB_EXEC_CAMPAIGN_HH

#include <cstdint>
#include <functional>
#include <string>

#include "exec/machine_pool.hh"
#include "exec/program_cache.hh"

namespace fb::exec
{

/**
 * Per-worker execution context handed to every campaign task. The
 * machine pool is private to the worker (no locking on the hot
 * path); the program cache is shared campaign-wide so each distinct
 * generated program assembles once regardless of which worker sees
 * it first.
 */
struct WorkerContext
{
    int worker = 0;
    MachinePool &machines;
    ProgramCache &programs;
};

/** Knobs for one campaign. */
struct CampaignOptions
{
    /** Worker threads. 1 = run inline on the calling thread. */
    int jobs = 1;
    /** Bound on queued tasks per worker (submission backpressure). */
    std::size_t queueCapacity = 64;
    /**
     * Optional externally-owned program cache. When set, interned
     * programs survive across runCampaign calls — a resident service
     * worker runs one lease per call and must not re-assemble the
     * same sources on every lease. Null = a private per-call cache.
     */
    ProgramCache *programs = nullptr;
    /**
     * Optional externally-owned machine pool for the inline
     * (jobs == 1) path, so recycled machines also survive across
     * calls. Ignored when jobs > 1 — parallel workers need private
     * pools (MachinePool is deliberately not thread-safe).
     */
    MachinePool *machines = nullptr;
};

/**
 * Result of one campaign item. The payload is free-form text the
 * consumer emits (e.g. a FAIL block); determinism of the overall
 * campaign output reduces to the runner being a pure function of the
 * item index.
 */
struct ItemResult
{
    bool failed = false;
    /**
     * Set by the campaign service when the item was isolated after
     * repeatedly killing its worker; the payload is then the
     * quarantine artifact, not the runner's output.
     */
    bool quarantined = false;
    std::string payload;
};

/**
 * Runs item @p index on a worker; must depend only on the index. A
 * runner that throws does not take down the campaign: the exception
 * is caught per task and converted into a failed ItemResult whose
 * payload carries the exception text (counted in
 * CampaignStats::failures).
 */
using ItemRunner =
    std::function<ItemResult(std::uint64_t index, WorkerContext &ctx)>;

/**
 * Receives every result in strictly ascending index order, streamed
 * as the ordered prefix completes (not batched at the end). Calls
 * are serialized; they run on whichever worker filled the gap.
 */
using ItemConsumer =
    std::function<void(std::uint64_t index, const ItemResult &result)>;

/** What a campaign did, for logs and throughput reporting. */
struct CampaignStats
{
    std::uint64_t items = 0;
    std::uint64_t failures = 0;
    std::uint64_t machinesBuilt = 0;
    std::uint64_t machinesReused = 0;
    std::uint64_t programsAssembled = 0;
    std::uint64_t programsInterned = 0;
    std::uint64_t tasksStolen = 0;
};

/**
 * Run @p run on item @p index, converting a thrown exception into a
 * failed ItemResult whose payload carries the exception text. This is
 * the per-task guard runCampaign applies; the service worker calls it
 * directly with the *global* item index, so an exception thrown
 * inside a lease reports the same `EXCEPTION item=N` line the
 * in-process engine would — lease-local indices never leak into
 * output.
 */
ItemResult runGuardedItem(const ItemRunner &run, std::uint64_t index,
                          WorkerContext &ctx);

/**
 * Run items [0, count) and deliver each result to @p consume in
 * ascending index order. With jobs == 1 everything runs inline on
 * the calling thread; with jobs > 1 the items fan out across a
 * work-stealing pool and an ordered emitter holds out-of-order
 * completions until the gap fills. Because the runner is a pure
 * function of the index and delivery order is fixed, the consumer
 * observes a byte-identical stream at any job count.
 */
CampaignStats runCampaign(std::uint64_t count,
                          const CampaignOptions &options,
                          const ItemRunner &run,
                          const ItemConsumer &consume);

} // namespace fb::exec

#endif // FB_EXEC_CAMPAIGN_HH
