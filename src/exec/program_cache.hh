/**
 * @file
 * Campaign-wide interning cache for assembled programs.
 */

#ifndef FB_EXEC_PROGRAM_CACHE_HH
#define FB_EXEC_PROGRAM_CACHE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "isa/program.hh"
#include "sim/decoded.hh"

namespace fb::exec
{

/**
 * One source text assembled exactly once: both encodings (region
 * bits and BRENTER/BREXIT markers) plus the static-check results,
 * shared by every scenario in a campaign that renders the same text.
 * Immutable after interning, so workers share it without locking.
 */
struct InternedProgram
{
    /** False if assembly failed; @ref error holds the message. */
    bool ok = false;
    std::string error;
    /** checkRegionBranches() verdict for the bit-encoded program. */
    std::optional<std::string> regionViolation;
    isa::Program bits;    ///< region-bit encoding
    isa::Program markers; ///< marker encoding (toMarkerEncoding)
    /**
     * Pre-decoded threaded-code blocks for both encodings (null when
     * assembly failed or the program is empty). Passing these to
     * Machine::loadProgram lets every pooled machine in a campaign
     * share one decode per distinct source instead of re-decoding on
     * each lease; loadProgram re-verifies the block's source hash, so
     * a block handed to the wrong program is rejected, not trusted.
     */
    std::shared_ptr<const sim::DecodedProgram> bitsDecoded;
    std::shared_ptr<const sim::DecodedProgram> markersDecoded;
};

/**
 * Shared assembly cache keyed by source text. Generated campaigns
 * draw from a small space of program shapes, so the same source
 * recurs across thousands of scenarios; interning makes each distinct
 * text pay the assembler exactly once per campaign. Thread-safe: one
 * mutex around the map, results handed out as shared_ptr-to-const.
 */
class ProgramCache
{
  public:
    /** Assemble @p source, or return the cached result. */
    std::shared_ptr<const InternedProgram>
    intern(const std::string &source);

    /** Lookups served from cache. */
    std::uint64_t hits() const;

    /** Lookups that ran the assembler. */
    std::uint64_t misses() const;

  private:
    mutable std::mutex _mu;
    std::unordered_map<std::string,
                       std::shared_ptr<const InternedProgram>>
        _cache;
    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;
};

} // namespace fb::exec

#endif // FB_EXEC_PROGRAM_CACHE_HH
