/**
 * @file
 * Factory for the software barrier implementations.
 */

#ifndef FB_SWBARRIER_FACTORY_HH
#define FB_SWBARRIER_FACTORY_HH

#include <memory>
#include <string>
#include <vector>

#include "swbarrier/split_barrier.hh"

namespace fb::sw
{

/** Available software barrier algorithms. */
enum class BarrierKind
{
    Centralized,
    Tree,
    Dissemination,
    Std,
    Blocking,
};

/** All kinds, for sweeps. */
std::vector<BarrierKind> allBarrierKinds();

/** Name of a kind (matches SplitBarrier::name()). */
const char *barrierKindName(BarrierKind kind);

/** Construct a barrier of the given kind for @p num_threads. */
std::unique_ptr<SplitBarrier> makeBarrier(BarrierKind kind,
                                          int num_threads);

} // namespace fb::sw

#endif // FB_SWBARRIER_FACTORY_HH
