#include "swbarrier/split_barrier.hh"

#include <chrono>
#include <thread>

namespace fb::sw
{

void
Backoff::pause()
{
    ++_spins;
    if (_spins < 16) {
        // Busy spin: cheapest when the partner is about to flip the
        // flag on another core.
#if defined(__x86_64__)
        __builtin_ia32_pause();
#endif
    } else if (_spins < 256) {
        std::this_thread::yield();
    } else {
        // Long wait: sleep so an oversubscribed host can run the
        // threads we are waiting for.
        std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
}

RetryResult
waitWithRetry(SplitBarrier &bar, int tid,
              std::chrono::microseconds initial_timeout,
              int max_attempts)
{
    if (max_attempts < 1)
        max_attempts = 1;
    std::chrono::microseconds timeout = initial_timeout;
    RetryResult result;
    for (int attempt = 1; attempt <= max_attempts; ++attempt) {
        result.attempts = attempt;
        if (bar.waitFor(tid, timeout)) {
            result.completed = true;
            return result;
        }
        timeout *= 2;
    }
    return result;
}

} // namespace fb::sw
