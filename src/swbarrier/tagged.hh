/**
 * @file
 * Multiple logical barriers for threads — the software analog of the
 * paper's section 5 tag/mask mechanism.
 *
 * "Logically distinct barriers are assigned to different subsets of
 * streams that do not know of each others existence... Two processors
 * can only synchronize at a barrier if their tags match." Here a
 * BarrierDomain owns a set of logical barriers, each created for an
 * explicit subset of the domain's threads (the mask); threads
 * arrive/wait on a barrier id (the tag).
 */

#ifndef FB_SWBARRIER_TAGGED_HH
#define FB_SWBARRIER_TAGGED_HH

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "swbarrier/split_barrier.hh"

namespace fb::sw
{

/**
 * A domain of threads sharing a set of logical split-phase barriers.
 *
 * Barriers are created (typically when streams are spawned — "barriers
 * are allocated when the streams are created") for explicit member
 * subsets and may be created and destroyed dynamically; an N-thread
 * domain never needs more than N-1 live barriers (section 5).
 * Creation and destruction are thread-safe; arrive/wait on a given
 * barrier id may only be called by its members.
 */
class BarrierDomain
{
  public:
    /** Create a domain of @p num_threads threads (ids 0..N-1). */
    explicit BarrierDomain(int num_threads);

    /** Number of threads in the domain. */
    int numThreads() const { return _numThreads; }

    /**
     * Create logical barrier @p tag for the given member threads.
     * @pre tag != 0 (0 means "not participating", as in hardware),
     * tag not currently in use, all members valid and distinct.
     */
    void createBarrier(int tag, const std::vector<int> &members);

    /** Destroy barrier @p tag. @pre no thread is inside arrive/wait. */
    void destroyBarrier(int tag);

    /** Number of live logical barriers. */
    std::size_t liveBarriers() const;

    /** Thread @p tid announces readiness at barrier @p tag. */
    void arrive(int tag, int tid);

    /** Thread @p tid blocks until barrier @p tag's episode completes. */
    void wait(int tag, int tid);

    /** Point-barrier convenience. */
    void
    synchronize(int tag, int tid)
    {
        arrive(tag, tid);
        wait(tag, tid);
    }

  private:
    struct LogicalBarrier
    {
        std::unique_ptr<SplitBarrier> impl;
        /** domain thread id -> dense member index. */
        std::map<int, int> memberIndex;
    };

    /** Look up a barrier and translate the thread id. */
    LogicalBarrier &find(int tag, int tid, int &member);

    int _numThreads;
    mutable std::mutex _mutex;
    std::map<int, LogicalBarrier> _barriers;
};

} // namespace fb::sw

#endif // FB_SWBARRIER_TAGGED_HH
