/**
 * @file
 * Adapter exposing C++20 std::barrier through the SplitBarrier
 * interface — the modern standard-library descendant of the fuzzy
 * barrier's arrive/wait split.
 */

#ifndef FB_SWBARRIER_STDBARRIER_HH
#define FB_SWBARRIER_STDBARRIER_HH

#include <atomic>
#include <barrier>
#include <chrono>
#include <optional>
#include <vector>

#include "support/logging.hh"
#include "swbarrier/split_barrier.hh"

namespace fb::sw
{

/**
 * std::barrier's arrive() returns an arrival token that wait()
 * consumes — exactly the fuzzy barrier decomposition. The adapter
 * stores the per-thread token between the two calls.
 *
 * std::barrier has no timed wait, so the adapter shadows the phase
 * with an atomic counter bumped by the barrier's completion step;
 * waitFor() spins on the shadow with a deadline and simply discards
 * the arrival token once the phase has advanced (tokens are
 * droppable — only arrive() participates in the protocol).
 */
class StdBarrierAdapter : public SplitBarrier
{
  public:
    explicit StdBarrierAdapter(int num_threads)
        : _numThreads(num_threads),
          _barrier(num_threads, PhaseBump{&_phase}),
          _tokens(static_cast<std::size_t>(num_threads))
    {
        FB_ASSERT(num_threads > 0, "need at least one thread");
    }

    int numThreads() const override { return _numThreads; }

    void
    arrive(int tid) override
    {
        auto &slot = _tokens[static_cast<std::size_t>(tid)];
        FB_ASSERT(!slot.token.has_value(), "arrive() twice without wait()");
        // Read the phase BEFORE arriving: once the token is issued,
        // the completion step may run on another thread and bump the
        // counter; reading afterwards could target the episode after
        // the one this arrival belongs to.
        slot.want = _phase.load(std::memory_order_acquire) + 1;
        slot.token.emplace(_barrier.arrive());
    }

    void
    wait(int tid) override
    {
        auto &slot = _tokens[static_cast<std::size_t>(tid)];
        FB_ASSERT(slot.token.has_value(), "wait() without arrive()");
        _barrier.wait(std::move(*slot.token));
        slot.token.reset();
    }

    bool
    waitFor(int tid, std::chrono::microseconds timeout) override
    {
        auto &slot = _tokens[static_cast<std::size_t>(tid)];
        FB_ASSERT(slot.token.has_value(), "waitFor() without arrive()");
        const auto deadline = std::chrono::steady_clock::now() + timeout;
        Backoff backoff;
        while (_phase.load(std::memory_order_acquire) < slot.want) {
            if (std::chrono::steady_clock::now() >= deadline)
                return false;  // token kept: retry or wait() resumes
            backoff.pause();
        }
        slot.token.reset();
        return true;
    }

    const char *name() const override { return "std::barrier"; }

  private:
    struct PhaseBump
    {
        std::atomic<std::uint64_t> *phase;

        void
        operator()() noexcept
        {
            phase->fetch_add(1, std::memory_order_release);
        }
    };

    struct alignas(64) TokenSlot
    {
        std::optional<std::barrier<PhaseBump>::arrival_token> token;
        std::uint64_t want = 0;
    };

    int _numThreads;
    std::atomic<std::uint64_t> _phase{0};
    std::barrier<PhaseBump> _barrier;
    std::vector<TokenSlot> _tokens;
};

} // namespace fb::sw

#endif // FB_SWBARRIER_STDBARRIER_HH
