/**
 * @file
 * Adapter exposing C++20 std::barrier through the SplitBarrier
 * interface — the modern standard-library descendant of the fuzzy
 * barrier's arrive/wait split.
 */

#ifndef FB_SWBARRIER_STDBARRIER_HH
#define FB_SWBARRIER_STDBARRIER_HH

#include <barrier>
#include <optional>
#include <vector>

#include "support/logging.hh"
#include "swbarrier/split_barrier.hh"

namespace fb::sw
{

/**
 * std::barrier's arrive() returns an arrival token that wait()
 * consumes — exactly the fuzzy barrier decomposition. The adapter
 * stores the per-thread token between the two calls.
 */
class StdBarrierAdapter : public SplitBarrier
{
  public:
    explicit StdBarrierAdapter(int num_threads)
        : _numThreads(num_threads), _barrier(num_threads),
          _tokens(static_cast<std::size_t>(num_threads))
    {
        FB_ASSERT(num_threads > 0, "need at least one thread");
    }

    int numThreads() const override { return _numThreads; }

    void
    arrive(int tid) override
    {
        auto &slot = _tokens[static_cast<std::size_t>(tid)];
        FB_ASSERT(!slot.token.has_value(), "arrive() twice without wait()");
        slot.token.emplace(_barrier.arrive());
    }

    void
    wait(int tid) override
    {
        auto &slot = _tokens[static_cast<std::size_t>(tid)];
        FB_ASSERT(slot.token.has_value(), "wait() without arrive()");
        _barrier.wait(std::move(*slot.token));
        slot.token.reset();
    }

    const char *name() const override { return "std::barrier"; }

  private:
    struct alignas(64) TokenSlot
    {
        std::optional<std::barrier<>::arrival_token> token;
    };

    int _numThreads;
    std::barrier<> _barrier;
    std::vector<TokenSlot> _tokens;
};

} // namespace fb::sw

#endif // FB_SWBARRIER_STDBARRIER_HH
