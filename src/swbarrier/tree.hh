/**
 * @file
 * Combining-tree barrier with a split-phase interface.
 */

#ifndef FB_SWBARRIER_TREE_HH
#define FB_SWBARRIER_TREE_HH

#include <atomic>
#include <cstdint>
#include <vector>

#include "swbarrier/split_barrier.hh"

namespace fb::sw
{

/**
 * Software combining tree: arrivals are combined pairwise up a binary
 * tree so no counter is touched by more than two threads, removing
 * the central hot spot; the release is a single global epoch word
 * (one writer, many readers). Arrival cost is O(log P) on the
 * critical path.
 *
 * Split phase: arrive() propagates the arrival up the tree (the
 * thread whose subtree completes last carries the arrival upward);
 * wait() spins on the release epoch.
 */
class TreeBarrier : public SplitBarrier
{
  public:
    explicit TreeBarrier(int num_threads);

    int numThreads() const override { return _numThreads; }
    void arrive(int tid) override;
    void wait(int tid) override;
    bool waitFor(int tid, std::chrono::microseconds timeout) override;
    const char *name() const override { return "tree"; }

    /** Shared-variable accesses performed so far (hot-spot metric). */
    std::uint64_t sharedAccesses() const
    {
        return _sharedAccesses.load(std::memory_order_relaxed);
    }

  private:
    struct alignas(64) Node
    {
        std::atomic<std::uint32_t> count{0};
        std::uint32_t expected = 0;
    };

    struct alignas(64) ThreadState
    {
        std::uint64_t epoch = 0;
    };

    int _numThreads;
    /** Heap-layout internal nodes; leaf i feeds node (i + P) / 2 - 1… */
    std::vector<Node> _nodes;
    std::vector<ThreadState> _threads;
    std::atomic<std::uint64_t> _releaseEpoch{0};
    std::atomic<std::uint64_t> _sharedAccesses{0};
};

} // namespace fb::sw

#endif // FB_SWBARRIER_TREE_HH
