#include "swbarrier/tree.hh"

#include "support/logging.hh"

namespace fb::sw
{

TreeBarrier::TreeBarrier(int num_threads)
    : _numThreads(num_threads),
      _nodes(static_cast<std::size_t>(num_threads)),  // ids 1..P-1 used
      _threads(static_cast<std::size_t>(num_threads))
{
    FB_ASSERT(num_threads > 0, "need at least one thread");
}

void
TreeBarrier::arrive(int tid)
{
    FB_ASSERT(tid >= 0 && tid < _numThreads, "bad thread id");
    ThreadState &ts = _threads[static_cast<std::size_t>(tid)];
    ++ts.epoch;

    // Complete binary tree with P leaves: internal nodes 1..P-1,
    // leaves P..2P-1 (leaf of thread t = P + t), parent = id / 2.
    // The *second* arriver at each node carries the combined arrival
    // upward, so arrive() never blocks: the tree combines without
    // waiting, and the final propagator publishes the release epoch.
    if (_numThreads == 1) {
        _releaseEpoch.store(ts.epoch, std::memory_order_release);
        return;
    }

    int node = (_numThreads + tid) / 2;
    for (;;) {
        Node &n = _nodes[static_cast<std::size_t>(node)];
        _sharedAccesses.fetch_add(1, std::memory_order_relaxed);
        std::uint32_t prior =
            n.count.fetch_add(1, std::memory_order_acq_rel);
        if (prior == 0)
            return;  // first arriver: the sibling subtree will carry on
        // Second arriver: reset for the next episode and climb. The
        // reset is ordered before the next episode's arrivals by the
        // release-epoch publication below plus wait()'s acquire.
        n.count.store(0, std::memory_order_relaxed);
        if (node == 1) {
            _releaseEpoch.store(ts.epoch, std::memory_order_release);
            return;
        }
        node /= 2;
    }
}

void
TreeBarrier::wait(int tid)
{
    FB_ASSERT(tid >= 0 && tid < _numThreads, "bad thread id");
    const std::uint64_t want =
        _threads[static_cast<std::size_t>(tid)].epoch;
    Backoff backoff;
    while (_releaseEpoch.load(std::memory_order_acquire) < want) {
        _sharedAccesses.fetch_add(1, std::memory_order_relaxed);
        backoff.pause();
    }
}

bool
TreeBarrier::waitFor(int tid, std::chrono::microseconds timeout)
{
    FB_ASSERT(tid >= 0 && tid < _numThreads, "bad thread id");
    // The release epoch is monotonic and the target is the thread's
    // private episode count, so a timed-out wait resumes cleanly.
    const std::uint64_t want =
        _threads[static_cast<std::size_t>(tid)].epoch;
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    Backoff backoff;
    while (_releaseEpoch.load(std::memory_order_acquire) < want) {
        _sharedAccesses.fetch_add(1, std::memory_order_relaxed);
        if (std::chrono::steady_clock::now() >= deadline)
            return false;
        backoff.pause();
    }
    return true;
}

} // namespace fb::sw
