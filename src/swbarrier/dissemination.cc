#include "swbarrier/dissemination.hh"

#include "support/logging.hh"

namespace fb::sw
{

namespace
{

int
roundsFor(int n)
{
    int rounds = 0;
    int reach = 1;
    while (reach < n) {
        reach *= 2;
        ++rounds;
    }
    return rounds;
}

} // namespace

DisseminationBarrier::DisseminationBarrier(int num_threads)
    : _numThreads(num_threads), _rounds(roundsFor(num_threads)),
      _flags(static_cast<std::size_t>(std::max(1, _rounds) * num_threads)),
      _threads(static_cast<std::size_t>(num_threads))
{
    FB_ASSERT(num_threads > 0, "need at least one thread");
}

void
DisseminationBarrier::signal(int tid, int round, std::uint64_t epoch)
{
    int partner = (tid + (1 << round)) % _numThreads;
    _flags[static_cast<std::size_t>(round * _numThreads + partner)]
        .epoch.store(epoch, std::memory_order_release);
    _sharedAccesses.fetch_add(1, std::memory_order_relaxed);
}

bool
DisseminationBarrier::await(
    int tid, int round, std::uint64_t epoch,
    const std::chrono::steady_clock::time_point *deadline)
{
    auto &flag =
        _flags[static_cast<std::size_t>(round * _numThreads + tid)];
    Backoff backoff;
    while (flag.epoch.load(std::memory_order_acquire) < epoch) {
        _sharedAccesses.fetch_add(1, std::memory_order_relaxed);
        if (deadline != nullptr &&
            std::chrono::steady_clock::now() >= *deadline)
            return false;
        backoff.pause();
    }
    return true;
}

bool
DisseminationBarrier::runRounds(
    int tid, const std::chrono::steady_clock::time_point *deadline)
{
    ThreadState &ts = _threads[static_cast<std::size_t>(tid)];
    while (ts.round < _rounds) {
        // The outgoing signal for ts.round was already sent, so a
        // timeout leaves the protocol consistent and resumable from
        // exactly this round.
        if (!await(tid, ts.round, ts.epoch, deadline))
            return false;
        ++ts.round;
        if (ts.round < _rounds)
            signal(tid, ts.round, ts.epoch);
    }
    return true;
}

void
DisseminationBarrier::arrive(int tid)
{
    FB_ASSERT(tid >= 0 && tid < _numThreads, "bad thread id");
    ThreadState &ts = _threads[static_cast<std::size_t>(tid)];
    ++ts.epoch;
    ts.round = 0;
    if (_rounds > 0)
        signal(tid, 0, ts.epoch);
}

void
DisseminationBarrier::wait(int tid)
{
    FB_ASSERT(tid >= 0 && tid < _numThreads, "bad thread id");
    runRounds(tid, nullptr);
}

bool
DisseminationBarrier::waitFor(int tid, std::chrono::microseconds timeout)
{
    FB_ASSERT(tid >= 0 && tid < _numThreads, "bad thread id");
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    return runRounds(tid, &deadline);
}

} // namespace fb::sw
