#include "swbarrier/blocking.hh"

#include "support/logging.hh"

namespace fb::sw
{

BlockingBarrier::BlockingBarrier(int num_threads)
    : _numThreads(num_threads),
      _arrivedGeneration(static_cast<std::size_t>(num_threads), 0)
{
    FB_ASSERT(num_threads > 0, "need at least one thread");
}

void
BlockingBarrier::arrive(int tid)
{
    FB_ASSERT(tid >= 0 && tid < _numThreads, "bad thread id");
    std::unique_lock<std::mutex> lock(_mutex);
    _arrivedGeneration[static_cast<std::size_t>(tid)] = _generation;
    if (++_count == _numThreads) {
        _count = 0;
        ++_generation;
        _blockedThisEpisode = false;
        _cv.notify_all();
    }
}

void
BlockingBarrier::wait(int tid)
{
    FB_ASSERT(tid >= 0 && tid < _numThreads, "bad thread id");
    std::unique_lock<std::mutex> lock(_mutex);
    std::uint64_t my_generation =
        _arrivedGeneration[static_cast<std::size_t>(tid)];
    if (_generation > my_generation)
        return;  // the episode completed during the barrier region
    if (!_blockedThisEpisode) {
        _blockedThisEpisode = true;
        ++_blockedEpisodes;
    }
    _cv.wait(lock, [&] { return _generation > my_generation; });
}

bool
BlockingBarrier::waitFor(int tid, std::chrono::microseconds timeout)
{
    FB_ASSERT(tid >= 0 && tid < _numThreads, "bad thread id");
    std::unique_lock<std::mutex> lock(_mutex);
    std::uint64_t my_generation =
        _arrivedGeneration[static_cast<std::size_t>(tid)];
    if (_generation > my_generation)
        return true;  // the episode completed during the barrier region
    if (!_blockedThisEpisode) {
        _blockedThisEpisode = true;
        ++_blockedEpisodes;
    }
    return _cv.wait_for(lock, timeout,
                        [&] { return _generation > my_generation; });
}

std::uint64_t
BlockingBarrier::blockedEpisodes() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _blockedEpisodes;
}

} // namespace fb::sw
