/**
 * @file
 * Blocking (mutex + condition variable) split-phase barrier.
 */

#ifndef FB_SWBARRIER_BLOCKING_HH
#define FB_SWBARRIER_BLOCKING_HH

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "swbarrier/split_barrier.hh"

namespace fb::sw
{

/**
 * The Encore-library style of barrier: a waiting task blocks in the
 * kernel instead of spinning, paying a context switch — the very cost
 * the paper's section 8 measures ("mainly due to context saves and
 * restores for the tasks that must be stalled"). On an oversubscribed
 * host this is the well-behaved baseline; the fuzzy arrive/wait split
 * shrinks the window in which the block can happen at all.
 */
class BlockingBarrier : public SplitBarrier
{
  public:
    explicit BlockingBarrier(int num_threads);

    int numThreads() const override { return _numThreads; }
    void arrive(int tid) override;
    void wait(int tid) override;
    bool waitFor(int tid, std::chrono::microseconds timeout) override;
    const char *name() const override { return "blocking"; }

    /** Episodes in which at least one thread actually blocked. */
    std::uint64_t blockedEpisodes() const;

  private:
    int _numThreads;
    mutable std::mutex _mutex;
    std::condition_variable _cv;
    int _count = 0;
    std::uint64_t _generation = 0;
    std::uint64_t _blockedEpisodes = 0;
    bool _blockedThisEpisode = false;
    /** Generation each thread arrived in (split-phase bookkeeping). */
    std::vector<std::uint64_t> _arrivedGeneration;
};

} // namespace fb::sw

#endif // FB_SWBARRIER_BLOCKING_HH
