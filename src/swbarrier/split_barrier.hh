/**
 * @file
 * Split-phase (fuzzy) software barrier interface for real threads.
 *
 * The paper's section 8 implements the fuzzy barrier in software on an
 * Encore Multimax: a processor announces readiness when it reaches the
 * start of its barrier region (arrive) and blocks only at the region's
 * end (wait). Everything between the two calls is the barrier region.
 * The classic "point" barrier is the degenerate arrive();wait() pair
 * with nothing in between.
 *
 * This is the same decomposition later standardized as MPI_Ibarrier /
 * MPI_Wait and C++20 std::barrier::arrive / wait.
 */

#ifndef FB_SWBARRIER_SPLIT_BARRIER_HH
#define FB_SWBARRIER_SPLIT_BARRIER_HH

#include <chrono>
#include <cstdint>

namespace fb::sw
{

/**
 * Abstract split-phase barrier over a fixed set of @c numThreads
 * threads, identified by dense ids 0..numThreads-1.
 *
 * Usage per episode, on every thread:
 *
 *     bar.arrive(tid);     // end of the preceding non-barrier region
 *     ... barrier-region work ...
 *     bar.wait(tid);       // before the next non-barrier region
 *
 * arrive() and wait() must strictly alternate per thread.
 */
class SplitBarrier
{
  public:
    virtual ~SplitBarrier() = default;

    /** Number of participating threads. */
    virtual int numThreads() const = 0;

    /** Announce that thread @p tid is ready to synchronize. */
    virtual void arrive(int tid) = 0;

    /** Block thread @p tid until the episode completes. */
    virtual void wait(int tid) = 0;

    /**
     * Bounded wait: like wait() but give up after @p timeout.
     *
     * @return true if the episode completed, false on timeout. After
     *         a timeout the thread is still armed; it may call
     *         waitFor() or wait() again to resume waiting (software
     *         parity with the hardware barrier watchdog's re-arm).
     */
    virtual bool waitFor(int tid, std::chrono::microseconds timeout) = 0;

    /** Algorithm name for reports. */
    virtual const char *name() const = 0;

    /** Point-barrier convenience: arrive and immediately wait. */
    void
    synchronize(int tid)
    {
        arrive(tid);
        wait(tid);
    }
};

/**
 * Spin-wait helper shared by the implementations: spins briefly, then
 * yields to the scheduler (essential on oversubscribed hosts), backing
 * off further on long waits.
 */
class Backoff
{
  public:
    /** One wait iteration. */
    void pause();

  private:
    std::uint32_t _spins = 0;
};

/** Outcome of waitWithRetry(). */
struct RetryResult
{
    bool completed = false;
    int attempts = 0;  ///< waitFor() calls made (>= 1)
};

/**
 * Wait with exponential-backoff retry: calls waitFor() with a
 * doubling timeout until the episode completes or @p max_attempts
 * tries are exhausted — the software analog of the hardware
 * watchdog's re-arm schedule. A false result means the caller should
 * treat some participant as dead and rebuild its barrier over the
 * surviving membership.
 */
RetryResult waitWithRetry(SplitBarrier &bar, int tid,
                          std::chrono::microseconds initial_timeout,
                          int max_attempts);

} // namespace fb::sw

#endif // FB_SWBARRIER_SPLIT_BARRIER_HH
