/**
 * @file
 * Dissemination barrier with a split-phase interface.
 */

#ifndef FB_SWBARRIER_DISSEMINATION_HH
#define FB_SWBARRIER_DISSEMINATION_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "swbarrier/split_barrier.hh"

namespace fb::sw
{

/**
 * The logarithmic-cost software barrier the paper cites as the best
 * software implementation [Yew/Tzeng/Lawrie]: ceil(log2 P) rounds, in
 * round r thread t signals thread (t + 2^r) mod P and waits for a
 * signal from (t - 2^r) mod P. No single hot word — every flag has
 * exactly one writer and one reader.
 *
 * Split phase: arrive() publishes the episode's round-0 signal;
 * wait() runs the remaining rounds. Episode counting (monotonic
 * epochs) replaces sense reversal so overlapping episodes are safe.
 */
class DisseminationBarrier : public SplitBarrier
{
  public:
    explicit DisseminationBarrier(int num_threads);

    int numThreads() const override { return _numThreads; }
    void arrive(int tid) override;
    void wait(int tid) override;
    const char *name() const override { return "dissemination"; }

    /** Shared flag accesses performed so far (hot-spot metric). */
    std::uint64_t sharedAccesses() const
    {
        return _sharedAccesses.load(std::memory_order_relaxed);
    }

  private:
    struct alignas(64) Flag
    {
        std::atomic<std::uint64_t> epoch{0};
    };

    struct alignas(64) ThreadState
    {
        std::uint64_t epoch = 0;
    };

    /** Signal partner for round @p round. */
    void signal(int tid, int round, std::uint64_t epoch);

    /** Wait for our round-@p round flag to reach @p epoch. */
    void await(int tid, int round, std::uint64_t epoch);

    int _numThreads;
    int _rounds;
    /** _flags[round * P + tid]: incoming signal for (tid, round). */
    std::vector<Flag> _flags;
    std::vector<ThreadState> _threads;
    std::atomic<std::uint64_t> _sharedAccesses{0};
};

} // namespace fb::sw

#endif // FB_SWBARRIER_DISSEMINATION_HH
