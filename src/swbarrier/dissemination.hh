/**
 * @file
 * Dissemination barrier with a split-phase interface.
 */

#ifndef FB_SWBARRIER_DISSEMINATION_HH
#define FB_SWBARRIER_DISSEMINATION_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "swbarrier/split_barrier.hh"

namespace fb::sw
{

/**
 * The logarithmic-cost software barrier the paper cites as the best
 * software implementation [Yew/Tzeng/Lawrie]: ceil(log2 P) rounds, in
 * round r thread t signals thread (t + 2^r) mod P and waits for a
 * signal from (t - 2^r) mod P. No single hot word — every flag has
 * exactly one writer and one reader.
 *
 * Split phase: arrive() publishes the episode's round-0 signal;
 * wait() runs the remaining rounds. Episode counting (monotonic
 * epochs) replaces sense reversal so overlapping episodes are safe.
 */
class DisseminationBarrier : public SplitBarrier
{
  public:
    explicit DisseminationBarrier(int num_threads);

    int numThreads() const override { return _numThreads; }
    void arrive(int tid) override;
    void wait(int tid) override;
    bool waitFor(int tid, std::chrono::microseconds timeout) override;
    const char *name() const override { return "dissemination"; }

    /** Shared flag accesses performed so far (hot-spot metric). */
    std::uint64_t sharedAccesses() const
    {
        return _sharedAccesses.load(std::memory_order_relaxed);
    }

  private:
    struct alignas(64) Flag
    {
        std::atomic<std::uint64_t> epoch{0};
    };

    struct alignas(64) ThreadState
    {
        std::uint64_t epoch = 0;
        /**
         * Next round whose incoming flag this thread must await. The
         * outgoing signal for this round has already been sent (by
         * arrive() for round 0, or on completing the previous round),
         * which is what makes a timed-out wait resumable: re-entering
         * waitFor() never re-signals a partner.
         */
        int round = 0;
    };

    /** Signal partner for round @p round. */
    void signal(int tid, int round, std::uint64_t epoch);

    /**
     * Wait for our round-@p round flag to reach @p epoch, bounded by
     * @p deadline if non-null. Returns false on timeout.
     */
    bool await(int tid, int round, std::uint64_t epoch,
               const std::chrono::steady_clock::time_point *deadline);

    /** Run the remaining rounds; bounded when @p deadline non-null. */
    bool runRounds(int tid,
                   const std::chrono::steady_clock::time_point *deadline);

    int _numThreads;
    int _rounds;
    /** _flags[round * P + tid]: incoming signal for (tid, round). */
    std::vector<Flag> _flags;
    std::vector<ThreadState> _threads;
    std::atomic<std::uint64_t> _sharedAccesses{0};
};

} // namespace fb::sw

#endif // FB_SWBARRIER_DISSEMINATION_HH
