#include "swbarrier/factory.hh"

#include "support/logging.hh"
#include "swbarrier/blocking.hh"
#include "swbarrier/centralized.hh"
#include "swbarrier/dissemination.hh"
#include "swbarrier/stdbarrier.hh"
#include "swbarrier/tree.hh"

namespace fb::sw
{

std::vector<BarrierKind>
allBarrierKinds()
{
    return {BarrierKind::Centralized, BarrierKind::Tree,
            BarrierKind::Dissemination, BarrierKind::Std,
            BarrierKind::Blocking};
}

const char *
barrierKindName(BarrierKind kind)
{
    switch (kind) {
      case BarrierKind::Centralized: return "centralized";
      case BarrierKind::Tree: return "tree";
      case BarrierKind::Dissemination: return "dissemination";
      case BarrierKind::Std: return "std::barrier";
      case BarrierKind::Blocking: return "blocking";
    }
    panic("unknown barrier kind");
}

std::unique_ptr<SplitBarrier>
makeBarrier(BarrierKind kind, int num_threads)
{
    switch (kind) {
      case BarrierKind::Centralized:
        return std::make_unique<CentralizedBarrier>(num_threads);
      case BarrierKind::Tree:
        return std::make_unique<TreeBarrier>(num_threads);
      case BarrierKind::Dissemination:
        return std::make_unique<DisseminationBarrier>(num_threads);
      case BarrierKind::Std:
        return std::make_unique<StdBarrierAdapter>(num_threads);
      case BarrierKind::Blocking:
        return std::make_unique<BlockingBarrier>(num_threads);
    }
    panic("unknown barrier kind");
}

} // namespace fb::sw
