/**
 * @file
 * Centralized sense-reversing barrier with a split-phase interface.
 */

#ifndef FB_SWBARRIER_CENTRALIZED_HH
#define FB_SWBARRIER_CENTRALIZED_HH

#include <atomic>
#include <vector>

#include "swbarrier/split_barrier.hh"

namespace fb::sw
{

/**
 * The classic shared-counter barrier the paper criticizes: every
 * episode performs P atomic read-modify-writes on one counter and all
 * waiters spin on one sense word — the textbook hot spot. Its cost
 * grows linearly with the number of processors.
 *
 * Split phase: arrive() performs the counter update (announcing
 * readiness); wait() spins on the sense flag.
 */
class CentralizedBarrier : public SplitBarrier
{
  public:
    explicit CentralizedBarrier(int num_threads);

    int numThreads() const override { return _numThreads; }
    void arrive(int tid) override;
    void wait(int tid) override;
    bool waitFor(int tid, std::chrono::microseconds timeout) override;
    const char *name() const override { return "centralized"; }

    /** Shared-variable accesses performed so far (hot-spot metric). */
    std::uint64_t sharedAccesses() const
    {
        return _sharedAccesses.load(std::memory_order_relaxed);
    }

  private:
    struct alignas(64) LocalSense
    {
        int sense = 0;
    };

    int _numThreads;
    std::atomic<int> _count{0};
    std::atomic<int> _sense{0};
    std::vector<LocalSense> _local;
    std::atomic<std::uint64_t> _sharedAccesses{0};
};

} // namespace fb::sw

#endif // FB_SWBARRIER_CENTRALIZED_HH
