#include "swbarrier/tagged.hh"

#include <set>

#include "support/logging.hh"
#include "swbarrier/dissemination.hh"

namespace fb::sw
{

BarrierDomain::BarrierDomain(int num_threads) : _numThreads(num_threads)
{
    FB_ASSERT(num_threads > 0, "domain needs at least one thread");
}

void
BarrierDomain::createBarrier(int tag, const std::vector<int> &members)
{
    FB_ASSERT(tag != 0, "tag 0 means 'not participating'");
    FB_ASSERT(!members.empty(), "barrier needs at least one member");

    LogicalBarrier lb;
    std::set<int> seen;
    int index = 0;
    for (int tid : members) {
        FB_ASSERT(tid >= 0 && tid < _numThreads,
                  "member " << tid << " outside the domain");
        FB_ASSERT(seen.insert(tid).second,
                  "member " << tid << " listed twice");
        lb.memberIndex.emplace(tid, index++);
    }
    lb.impl = std::make_unique<DisseminationBarrier>(
        static_cast<int>(members.size()));

    std::lock_guard<std::mutex> lock(_mutex);
    auto [it, inserted] = _barriers.emplace(tag, std::move(lb));
    FB_ASSERT(inserted, "barrier tag " << tag << " already in use");
}

void
BarrierDomain::destroyBarrier(int tag)
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::size_t erased = _barriers.erase(tag);
    FB_ASSERT(erased == 1, "destroying unknown barrier tag " << tag);
}

std::size_t
BarrierDomain::liveBarriers() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _barriers.size();
}

BarrierDomain::LogicalBarrier &
BarrierDomain::find(int tag, int tid, int &member)
{
    std::lock_guard<std::mutex> lock(_mutex);
    auto it = _barriers.find(tag);
    FB_ASSERT(it != _barriers.end(), "unknown barrier tag " << tag);
    auto mit = it->second.memberIndex.find(tid);
    FB_ASSERT(mit != it->second.memberIndex.end(),
              "thread " << tid << " is not a member of barrier " << tag);
    member = mit->second;
    return it->second;
}

void
BarrierDomain::arrive(int tag, int tid)
{
    int member;
    LogicalBarrier &lb = find(tag, tid, member);
    lb.impl->arrive(member);
}

void
BarrierDomain::wait(int tag, int tid)
{
    int member;
    LogicalBarrier &lb = find(tag, tid, member);
    lb.impl->wait(member);
}

} // namespace fb::sw
