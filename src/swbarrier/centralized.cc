#include "swbarrier/centralized.hh"

#include "support/logging.hh"

namespace fb::sw
{

CentralizedBarrier::CentralizedBarrier(int num_threads)
    : _numThreads(num_threads),
      _local(static_cast<std::size_t>(num_threads))
{
    FB_ASSERT(num_threads > 0, "need at least one thread");
}

void
CentralizedBarrier::arrive(int tid)
{
    FB_ASSERT(tid >= 0 && tid < _numThreads, "bad thread id");
    LocalSense &ls = _local[static_cast<std::size_t>(tid)];
    ls.sense = 1 - ls.sense;
    _sharedAccesses.fetch_add(1, std::memory_order_relaxed);
    if (_count.fetch_add(1, std::memory_order_acq_rel) ==
        _numThreads - 1) {
        // Last arrival releases the episode.
        _count.store(0, std::memory_order_relaxed);
        _sharedAccesses.fetch_add(1, std::memory_order_relaxed);
        _sense.store(ls.sense, std::memory_order_release);
    }
}

void
CentralizedBarrier::wait(int tid)
{
    FB_ASSERT(tid >= 0 && tid < _numThreads, "bad thread id");
    const int want = _local[static_cast<std::size_t>(tid)].sense;
    Backoff backoff;
    while (_sense.load(std::memory_order_acquire) != want) {
        _sharedAccesses.fetch_add(1, std::memory_order_relaxed);
        backoff.pause();
    }
}

bool
CentralizedBarrier::waitFor(int tid, std::chrono::microseconds timeout)
{
    FB_ASSERT(tid >= 0 && tid < _numThreads, "bad thread id");
    // The target sense is the thread's local sense, which only the
    // thread's own arrive() changes — so a timed-out wait can simply
    // be retried.
    const int want = _local[static_cast<std::size_t>(tid)].sense;
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    Backoff backoff;
    while (_sense.load(std::memory_order_acquire) != want) {
        _sharedAccesses.fetch_add(1, std::memory_order_relaxed);
        if (std::chrono::steady_clock::now() >= deadline)
            return false;
        backoff.pause();
    }
    return true;
}

} // namespace fb::sw
