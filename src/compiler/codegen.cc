#include "compiler/codegen.hh"

#include <algorithm>

#include "support/logging.hh"

namespace fb::compiler
{

using ir::Operand;
using ir::TacInstr;
using ir::TacOp;
using isa::Instruction;
using isa::Opcode;

namespace
{

/** Registers reserved for constant materialization. */
constexpr int scratch0 = 29;
constexpr int scratch1 = 30;
/** Highest register usable for temporaries. */
constexpr int tempHigh = 28;

Opcode
aluOpFor(TacOp op)
{
    switch (op) {
      case TacOp::Add: return Opcode::ADD;
      case TacOp::Sub: return Opcode::SUB;
      case TacOp::Mul: return Opcode::MUL;
      case TacOp::Div: return Opcode::DIV;
      default: panic("not an ALU TacOp");
    }
}

} // namespace

CodeEmitter::CodeEmitter(CodegenOptions opts) : _opts(std::move(opts)) {}

void
CodeEmitter::append(Instruction instr, bool in_region)
{
    instr.inRegion = in_region;
    _program.append(instr, in_region ? _opts.barrierId : -1);
}

void
CodeEmitter::emitPrologue()
{
    append(Instruction::settag(_opts.tag), false);
    append(Instruction::setmask(static_cast<std::int64_t>(_opts.mask)),
           false);
    for (const auto &[name, addr] : _opts.baseAddresses)
        append(Instruction::li(persistentReg(name), addr), false);
}

int
CodeEmitter::persistentReg(const std::string &name)
{
    auto it = _persistent.find(name);
    if (it != _persistent.end())
        return it->second;
    FB_ASSERT(_nextPersistent <= tempHigh,
              "out of persistent registers for '" << name << "'");
    int reg = _nextPersistent++;
    _persistent.emplace(name, reg);
    return reg;
}

int
CodeEmitter::tempReg(int id, bool create)
{
    auto it = _temps.find(id);
    if (it != _temps.end())
        return it->second;
    FB_ASSERT(create, "temp T" << id << " read before being written");
    int reg;
    if (!_freeRegs.empty()) {
        reg = _freeRegs.back();
        _freeRegs.pop_back();
    } else {
        FB_ASSERT(_nextPersistent <= tempHigh,
                  "out of registers for temporaries");
        reg = _nextPersistent++;
    }
    _temps.emplace(id, reg);
    return reg;
}

void
CodeEmitter::freeTemp(int id)
{
    auto it = _temps.find(id);
    if (it == _temps.end())
        return;
    _freeRegs.push_back(it->second);
    _temps.erase(it);
}

int
CodeEmitter::materialize(std::int64_t value, bool in_region)
{
    // Two scratch registers alternate so a binary op can hold two
    // distinct constants at once.
    int reg = _scratchToggle == 0 ? scratch0 : scratch1;
    _scratchToggle ^= 1;
    append(Instruction::li(reg, value), in_region);
    return reg;
}

int
CodeEmitter::readReg(const Operand &op, bool in_region)
{
    switch (op.kind()) {
      case ir::OperandKind::Temp:
        return tempReg(op.tempId(), false);
      case ir::OperandKind::Var:
        return persistentReg(op.name());
      case ir::OperandKind::Base: {
        FB_ASSERT(_opts.baseAddresses.count(op.name()),
                  "array base '" << op.name()
                                 << "' missing from CodegenOptions");
        return persistentReg(op.name());
      }
      case ir::OperandKind::Const:
        return materialize(op.value(), in_region);
      case ir::OperandKind::None:
        panic("reading the empty operand");
    }
    panic("unreachable");
}

void
CodeEmitter::emitBlock(const ir::Block &block, int force_region)
{
    // Last use of each temp inside this block, so registers recycle.
    std::map<int, std::size_t> last_use;
    for (std::size_t i = 0; i < block.size(); ++i) {
        const TacInstr &instr = block.at(i);
        for (const Operand &r : readsOf(instr))
            if (r.isTemp())
                last_use[r.tempId()] = i;
        Operand w = writeOf(instr);
        if (w.isTemp())
            last_use[w.tempId()] = i;
    }

    for (std::size_t i = 0; i < block.size(); ++i) {
        const TacInstr &instr = block.at(i);
        bool in_region =
            force_region >= 0 ? force_region != 0 : instr.inRegion;

        switch (instr.op) {
          case TacOp::Add:
          case TacOp::Sub:
          case TacOp::Mul:
          case TacOp::Div: {
            const Operand &dst = instr.dst;
            // Constant folding and immediate selection.
            if (instr.a.isConst() && instr.b.isConst()) {
                std::int64_t a = instr.a.value();
                std::int64_t b = instr.b.value();
                std::int64_t v = 0;
                switch (instr.op) {
                  case TacOp::Add: v = a + b; break;
                  case TacOp::Sub: v = a - b; break;
                  case TacOp::Mul: v = a * b; break;
                  case TacOp::Div:
                    FB_ASSERT(b != 0, "constant division by zero");
                    v = a / b;
                    break;
                  default: break;
                }
                int rd = dst.isTemp() ? tempReg(dst.tempId(), true)
                                      : persistentReg(dst.name());
                append(Instruction::li(rd, v), in_region);
            } else if (instr.op == TacOp::Add &&
                       (instr.a.isConst() || instr.b.isConst())) {
                const Operand &c = instr.a.isConst() ? instr.a : instr.b;
                const Operand &r = instr.a.isConst() ? instr.b : instr.a;
                int rs = readReg(r, in_region);
                int rd = dst.isTemp() ? tempReg(dst.tempId(), true)
                                      : persistentReg(dst.name());
                append(Instruction::rri(Opcode::ADDI, rd, rs, c.value()),
                       in_region);
            } else if (instr.op == TacOp::Sub && instr.b.isConst()) {
                int rs = readReg(instr.a, in_region);
                int rd = dst.isTemp() ? tempReg(dst.tempId(), true)
                                      : persistentReg(dst.name());
                append(Instruction::rri(Opcode::ADDI, rd, rs,
                                        -instr.b.value()),
                       in_region);
            } else if (instr.op == TacOp::Mul &&
                       (instr.a.isConst() || instr.b.isConst())) {
                const Operand &c = instr.a.isConst() ? instr.a : instr.b;
                const Operand &r = instr.a.isConst() ? instr.b : instr.a;
                int rs = readReg(r, in_region);
                int rd = dst.isTemp() ? tempReg(dst.tempId(), true)
                                      : persistentReg(dst.name());
                append(Instruction::rri(Opcode::MULI, rd, rs, c.value()),
                       in_region);
            } else {
                int ra = readReg(instr.a, in_region);
                int rb = readReg(instr.b, in_region);
                int rd = dst.isTemp() ? tempReg(dst.tempId(), true)
                                      : persistentReg(dst.name());
                append(Instruction::rrr(aluOpFor(instr.op), rd, ra, rb),
                       in_region);
            }
            break;
          }
          case TacOp::Copy: {
            int rd = instr.dst.isTemp()
                         ? tempReg(instr.dst.tempId(), true)
                         : persistentReg(instr.dst.name());
            if (instr.a.isConst()) {
                append(Instruction::li(rd, instr.a.value()), in_region);
            } else {
                int rs = readReg(instr.a, in_region);
                append(Instruction::mov(rd, rs), in_region);
            }
            break;
          }
          case TacOp::Load: {
            int raddr = readReg(instr.a, in_region);
            int rd = instr.dst.isTemp()
                         ? tempReg(instr.dst.tempId(), true)
                         : persistentReg(instr.dst.name());
            append(Instruction::ld(rd, raddr, 0), in_region);
            break;
          }
          case TacOp::Store: {
            int rval = readReg(instr.a, in_region);
            int raddr = readReg(instr.dst, in_region);
            append(Instruction::st(raddr, 0, rval), in_region);
            break;
          }
        }

        // Recycle temp registers whose last use was this instruction.
        for (const Operand &r : readsOf(instr)) {
            if (r.isTemp() && last_use[r.tempId()] == i)
                freeTemp(r.tempId());
        }
        Operand w = writeOf(instr);
        if (w.isTemp() && last_use[w.tempId()] == i)
            freeTemp(w.tempId());
    }

    // Temps never outlive the block they were defined in.
    std::vector<int> leftovers;
    for (const auto &[id, reg] : _temps)
        leftovers.push_back(id);
    for (int id : leftovers)
        freeTemp(id);
}

void
CodeEmitter::setVarConst(const std::string &var, std::int64_t value,
                         bool in_region)
{
    append(Instruction::li(persistentReg(var), value), in_region);
}

void
CodeEmitter::addVarConst(const std::string &var, std::int64_t value,
                         bool in_region)
{
    int reg = persistentReg(var);
    append(Instruction::rri(Opcode::ADDI, reg, reg, value), in_region);
}

void
CodeEmitter::label(const std::string &name)
{
    _program.defineLabel(name);
}

void
CodeEmitter::branchVarLtConst(const std::string &var, std::int64_t limit,
                              const std::string &target, bool in_region)
{
    int limit_reg = persistentReg("$limit" + std::to_string(limit));
    // The limit register is (re)loaded right before use; redundant
    // reloads per iteration cost one cycle and keep the emitter
    // stateless across control flow.
    append(Instruction::li(limit_reg, limit), in_region);
    std::size_t idx = _program.appendBranchTo(
        Opcode::BLT, persistentReg(var), limit_reg, target,
        in_region ? _opts.barrierId : -1);
    _program.at(idx).inRegion = in_region;
}

void
CodeEmitter::branchVarNeZero(const std::string &var,
                             const std::string &target, bool in_region)
{
    std::size_t idx = _program.appendBranchTo(
        Opcode::BNE, persistentReg(var), 0, target,
        in_region ? _opts.barrierId : -1);
    _program.at(idx).inRegion = in_region;
}

void
CodeEmitter::jump(const std::string &target, bool in_region)
{
    std::size_t idx =
        _program.appendJumpTo(target, in_region ? _opts.barrierId : -1);
    _program.at(idx).inRegion = in_region;
}

void
CodeEmitter::storeVarTo(const std::string &var, std::int64_t addr,
                        bool in_region)
{
    append(Instruction::st(0, addr, persistentReg(var)), in_region);
}

void
CodeEmitter::emitPointBarrier()
{
    append(Instruction::simple(Opcode::NOP), true);
}

void
CodeEmitter::emitHalt()
{
    append(Instruction::simple(Opcode::HALT), false);
}

isa::Program
CodeEmitter::finish()
{
    _program.finalize();
    return std::move(_program);
}

int
CodeEmitter::varReg(const std::string &var) const
{
    auto it = _persistent.find(var);
    FB_ASSERT(it != _persistent.end(), "unknown variable " << var);
    return it->second;
}

isa::Program
compileLoop(const LoopSpec &spec, const CodegenOptions &opts)
{
    CodeEmitter em(opts);
    em.emitPrologue();
    for (const auto &[var, value] : spec.varInit)
        em.setVarConst(var, value, spec.initInRegion);
    em.setVarConst(spec.counter, spec.begin, spec.initInRegion);
    em.label("Lloop");
    em.emitBlock(spec.body);
    em.addVarConst(spec.counter, spec.step, spec.controlInRegion);
    em.branchVarLtConst(spec.counter, spec.limit, "Lloop",
                        spec.controlInRegion);
    for (const auto &[var, addr] : spec.epilogueStores)
        em.storeVarTo(var, addr, false);
    em.emitHalt();
    return em.finish();
}

} // namespace fb::compiler
