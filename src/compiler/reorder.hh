/**
 * @file
 * Three-phase code reordering that shrinks the non-barrier region
 * (paper section 4).
 */

#ifndef FB_COMPILER_REORDER_HH
#define FB_COMPILER_REORDER_HH

#include "compiler/region.hh"
#include "ir/block.hh"

namespace fb::compiler
{

/** Outcome of the reordering pass. */
struct ReorderResult
{
    ir::Block block;          ///< reordered body with regions assigned
    RegionAssignment regions; ///< boundaries in the new order
    std::size_t phase1 = 0;   ///< instrs moved to the leading region
    std::size_t phase2 = 0;   ///< instrs kept in the non-barrier region
    std::size_t phase3 = 0;   ///< instrs moved to the trailing region
};

/**
 * Reorder @p block to minimize the non-barrier region, exactly as the
 * paper describes:
 *
 *  - Phase 1 schedules ready instructions that are not marked; these
 *    land in the barrier region *preceding* the non-barrier region
 *    (address arithmetic in the Fig. 4 example).
 *  - Phase 2 schedules the marked instructions as early as possible,
 *    pulling in any unscheduled instructions they depend on; these
 *    form the non-barrier region.
 *  - Phase 3 schedules whatever remains; it lands in the barrier
 *    region *following* the non-barrier region.
 *
 * The returned order always respects the block's dependence DAG.
 */
ReorderResult threePhaseReorder(const ir::Block &block);

} // namespace fb::compiler

#endif // FB_COMPILER_REORDER_HH
