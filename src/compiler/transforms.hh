/**
 * @file
 * Statement-level transformations that enlarge barrier regions:
 * loop distribution (paper Fig. 5), loop unrolling (Fig. 11), and
 * the multiple-version roles for run-time scheduling (Fig. 12).
 */

#ifndef FB_COMPILER_TRANSFORMS_HH
#define FB_COMPILER_TRANSFORMS_HH

#include <string>
#include <vector>

#include "ir/block.hh"

namespace fb::compiler
{

/**
 * One source statement of a parallel loop body, for the statement-
 * level transforms.
 */
struct Statement
{
    std::string name;        ///< e.g. "S1"
    ir::Block body;          ///< TAC for one execution
    /**
     * True if the statement is involved in the loop-carried
     * dependence that forces the outer loop to be sequential (S1 in
     * Fig. 5). Such statements must execute in the non-barrier
     * region; independent statements may move into the barrier
     * region.
     */
    bool carriesLoopDep = false;
};

/** One inner loop produced by loop distribution. */
struct DistributedLoop
{
    Statement stmt;
    bool inBarrierRegion;  ///< whole loop executes inside the region
};

/**
 * Apply loop distribution: each statement gets its own inner loop.
 * Loops for dependence-carrying statements come first and stay in
 * the non-barrier region; loops for independent statements follow
 * and form the barrier region (Fig. 5(c)). Source order is preserved
 * within each class, which is legal because independent statements
 * have no dependence into the carried ones across the split — the
 * caller asserts that by its choice of carriesLoopDep flags.
 */
std::vector<DistributedLoop>
distributeLoop(const std::vector<Statement> &stmts);

/**
 * Without distribution, only the trailing executions can be in the
 * region: the barrier region holds just the final execution of the
 * last independent statement (Fig. 5(b)). Returns the number of
 * statement executions (out of @p stmts.size() * @p iterations) that
 * can be placed in the barrier region.
 */
std::size_t regionExecutionsWithoutDistribution(
    const std::vector<Statement> &stmts, std::size_t iterations);

/** Ditto after distribution: whole loops of independent statements. */
std::size_t regionExecutionsWithDistribution(
    const std::vector<Statement> &stmts, std::size_t iterations);

/**
 * Substitute every read of variable @p var in @p block with
 * (@p var + @p offset), renumbering temporaries starting at
 * @p next_temp (updated). Used by unrolling: iteration k+delta's body
 * is the original body with the counter offset.
 */
ir::Block substituteVarOffset(const ir::Block &block,
                              const std::string &var, std::int64_t offset,
                              int &next_temp);

/**
 * Unroll a loop body @p factor times: concatenates factor copies of
 * @p block with counter offsets 0, step, 2*step, ... Temporaries are
 * renumbered to stay distinct.
 */
ir::Block unrollBody(const ir::Block &block, const std::string &counter,
                     std::int64_t step, int factor);

/**
 * Cycle shrinking [Polychronopoulos], the transformation the paper's
 * introduction names as a major beneficiary of cheap barriers: a
 * doacross loop whose dependence distance is @p distance can execute
 * @p distance consecutive iterations in parallel, with a barrier
 * between groups. Returns the groups in execution order; iterations
 * within one group are mutually independent.
 *
 * @pre distance >= 1. With distance == 1 every group is a single
 * iteration (fully sequential); with distance >= trip_count the whole
 * loop is one parallel group.
 */
std::vector<std::vector<int>> cycleShrink(int trip_count, int distance);

/** Multiple-version loop roles (Fig. 12). */
enum class IterationRole
{
    First,   ///< version 1: first and not last — starts with a barrier
    Last,    ///< version 2: not first and last — followed by a barrier
    Middle,  ///< version 3: neither — no barrier code at all
    Only,    ///< version 4: first and last — barrier on both sides
};

/** Select the version for an iteration's position in the processor's
 * allocation. */
IterationRole roleFor(bool first, bool last);

/** Readable role name. */
const char *iterationRoleName(IterationRole role);

/** True if this role's code begins with a barrier region. */
bool roleStartsWithBarrier(IterationRole role);

/** True if this role's code is followed by a barrier region. */
bool roleEndsWithBarrier(IterationRole role);

} // namespace fb::compiler

#endif // FB_COMPILER_TRANSFORMS_HH
