/**
 * @file
 * Code generation: three-address code with region annotations down to
 * machine Programs with per-instruction region bits.
 */

#ifndef FB_COMPILER_CODEGEN_HH
#define FB_COMPILER_CODEGEN_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "ir/block.hh"
#include "isa/program.hh"

namespace fb::compiler
{

/** Machine-level parameters for code generation. */
struct CodegenOptions
{
    /** Word address of each array base used by the code. */
    std::map<std::string, std::int64_t> baseAddresses;

    /** Barrier tag this stream synchronizes under (0 = none). */
    int tag = 1;

    /** Participation mask (bit p = processor p). */
    std::uint64_t mask = 0;

    /** Logical barrier id recorded in the Program metadata. */
    int barrierId = 1;
};

/**
 * Emits machine code instruction by instruction, managing register
 * allocation: named variables and array bases get dedicated registers
 * for the whole program; temporaries are recycled after their last
 * use within each emitted block.
 */
class CodeEmitter
{
  public:
    explicit CodeEmitter(CodegenOptions opts);

    /** Emit settag/setmask and load array base registers. */
    void emitPrologue();

    /** Emit var = value (allocating the variable's register). */
    void setVarConst(const std::string &var, std::int64_t value,
                     bool in_region = false);

    /** Emit var += value. */
    void addVarConst(const std::string &var, std::int64_t value,
                     bool in_region = false);

    /**
     * Emit a whole TAC block. Region bits come from each TacInstr's
     * inRegion flag unless @p force_region is >= 0 (0 = all
     * non-barrier, 1 = all barrier).
     */
    void emitBlock(const ir::Block &block, int force_region = -1);

    /** Define a label at the next instruction. */
    void label(const std::string &name);

    /** Emit "if (var < limit_var's constant) goto label". The limit
     * constant gets a persistent register on first use. */
    void branchVarLtConst(const std::string &var, std::int64_t limit,
                          const std::string &target,
                          bool in_region = false);

    /** Emit "if (var != 0) goto label". */
    void branchVarNeZero(const std::string &var, const std::string &target,
                         bool in_region = false);

    /** Emit an unconditional jump. */
    void jump(const std::string &target, bool in_region = false);

    /** Emit a store of @p var's register to memory word @p addr. */
    void storeVarTo(const std::string &var, std::int64_t addr,
                    bool in_region = false);

    /** Emit a barrier region containing only a NOP (a point barrier:
     * the paper's null barrier region). */
    void emitPointBarrier();

    /** Emit HALT. */
    void emitHalt();

    /** Finalize and return the program. */
    isa::Program finish();

    /** Register currently holding @p var (for tests). */
    int varReg(const std::string &var) const;

  private:
    /** Persistent register for a variable or base. */
    int persistentReg(const std::string &name);

    /** Register holding a temp (must exist unless @p create). */
    int tempReg(int id, bool create);

    /** Free a temp's register. */
    void freeTemp(int id);

    /** Materialize a constant into a scratch register. */
    int materialize(std::int64_t value, bool in_region);

    /** Resolve an operand to a register for reading. */
    int readReg(const ir::Operand &op, bool in_region);

    void append(isa::Instruction instr, bool in_region);

    CodegenOptions _opts;
    isa::Program _program;

    std::map<std::string, int> _persistent;
    std::map<int, int> _temps;
    std::vector<int> _freeRegs;
    int _nextPersistent = 1;
    int _scratchToggle = 0;
};

/** A counted loop around an annotated body. */
struct LoopSpec
{
    std::string counter;        ///< loop variable name
    std::int64_t begin = 0;     ///< initial value
    std::int64_t limit = 0;     ///< iterate while counter < limit
    std::int64_t step = 1;      ///< increment
    ir::Block body;             ///< loop body with region flags

    /** Initial values of other per-processor variables. */
    std::vector<std::pair<std::string, std::int64_t>> varInit;

    /**
     * Place loop control (increment + backedge) in the barrier
     * region, extending the region across iterations (Fig. 4).
     */
    bool controlInRegion = true;

    /** Place the loop-variable initialization in a region too
     * (Fig. 4 puts i=1, j=m, k=1 in the leading barrier region). */
    bool initInRegion = true;

    /** After the loop, store these vars to memory for inspection:
     * (variable, word address). */
    std::vector<std::pair<std::string, std::int64_t>> epilogueStores;
};

/**
 * Compile @p spec into a complete stream: prologue, initialization,
 * loop with region bits, epilogue stores, halt.
 */
isa::Program compileLoop(const LoopSpec &spec, const CodegenOptions &opts);

} // namespace fb::compiler

#endif // FB_COMPILER_CODEGEN_HH
