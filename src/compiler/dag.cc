#include "compiler/dag.hh"

#include <algorithm>
#include <map>

#include "support/logging.hh"

namespace fb::compiler
{

using ir::Operand;
using ir::TacInstr;
using ir::TacOp;

DependenceDag::DependenceDag(const ir::Block &block)
    : _preds(block.size()), _succs(block.size())
{
    // Register dependences: track, per operand, the last writer and
    // the readers since that write.
    std::map<Operand, std::size_t> last_writer;
    std::map<Operand, std::vector<std::size_t>> readers_since;

    // Memory dependences: per array name, last store and loads since.
    // An empty array name is conservative: it aliases everything.
    struct MemState
    {
        bool has_store = false;
        std::size_t last_store = 0;
        std::vector<std::size_t> loads_since;
    };
    std::map<std::string, MemState> mem;
    auto aliases = [](const std::string &a, const std::string &b) {
        return a.empty() || b.empty() || a == b;
    };

    for (std::size_t i = 0; i < block.size(); ++i) {
        const TacInstr &instr = block.at(i);

        for (const Operand &r : readsOf(instr)) {
            auto w = last_writer.find(r);
            if (w != last_writer.end())
                addEdge(w->second, i, DepKind::Raw);
            readers_since[r].push_back(i);
        }

        Operand w = writeOf(instr);
        if (!w.isNone()) {
            auto prev = last_writer.find(w);
            if (prev != last_writer.end())
                addEdge(prev->second, i, DepKind::Waw);
            for (std::size_t reader : readers_since[w]) {
                if (reader != i)
                    addEdge(reader, i, DepKind::War);
            }
            readers_since[w].clear();
            last_writer[w] = i;
        }

        if (instr.op == TacOp::Load) {
            for (auto &[array, state] : mem) {
                if (state.has_store && aliases(array, instr.array))
                    addEdge(state.last_store, i, DepKind::Mem);
            }
            mem[instr.array].loads_since.push_back(i);
        } else if (instr.op == TacOp::Store) {
            for (auto &[array, state] : mem) {
                if (!aliases(array, instr.array))
                    continue;
                if (state.has_store)
                    addEdge(state.last_store, i, DepKind::Mem);
                for (std::size_t load : state.loads_since)
                    addEdge(load, i, DepKind::Mem);
                state.loads_since.clear();
            }
            auto &own = mem[instr.array];
            own.has_store = true;
            own.last_store = i;
        }
    }
}

void
DependenceDag::addEdge(std::size_t from, std::size_t to, DepKind kind)
{
    FB_ASSERT(from < to, "dependence edges must point forward");
    // Deduplicate: multiple reasons for the same ordering collapse.
    if (std::find(_succs[from].begin(), _succs[from].end(), to) !=
        _succs[from].end())
        return;
    _succs[from].push_back(to);
    _preds[to].push_back(from);
    _edges.push_back({from, to, kind});
}

const std::vector<std::size_t> &
DependenceDag::preds(std::size_t i) const
{
    FB_ASSERT(i < _preds.size(), "node index out of range");
    return _preds[i];
}

const std::vector<std::size_t> &
DependenceDag::succs(std::size_t i) const
{
    FB_ASSERT(i < _succs.size(), "node index out of range");
    return _succs[i];
}

bool
DependenceDag::validOrder(const std::vector<std::size_t> &order) const
{
    if (order.size() != size())
        return false;
    std::vector<std::size_t> position(size());
    std::vector<bool> seen(size(), false);
    for (std::size_t pos = 0; pos < order.size(); ++pos) {
        if (order[pos] >= size() || seen[order[pos]])
            return false;
        seen[order[pos]] = true;
        position[order[pos]] = pos;
    }
    for (const DepEdge &e : _edges) {
        if (position[e.from] >= position[e.to])
            return false;
    }
    return true;
}

bool
DependenceDag::dependsOnAny(std::size_t i,
                            const std::vector<std::size_t> &sources) const
{
    std::vector<bool> is_source(size(), false);
    for (std::size_t s : sources)
        is_source[s] = true;
    // DFS over predecessors.
    std::vector<std::size_t> stack{i};
    std::vector<bool> visited(size(), false);
    while (!stack.empty()) {
        std::size_t node = stack.back();
        stack.pop_back();
        for (std::size_t p : _preds[node]) {
            if (is_source[p])
                return true;
            if (!visited[p]) {
                visited[p] = true;
                stack.push_back(p);
            }
        }
    }
    return false;
}

} // namespace fb::compiler
