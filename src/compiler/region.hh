/**
 * @file
 * Marked-instruction analysis and barrier/non-barrier region
 * construction (paper section 4).
 */

#ifndef FB_COMPILER_REGION_HH
#define FB_COMPILER_REGION_HH

#include <set>
#include <string>

#include "ir/block.hh"

namespace fb::compiler
{

/**
 * Mark every load/store that touches one of @p shared_arrays — the
 * arrays carrying cross-iteration (hence cross-processor) dependences.
 * "The marked instructions are those instructions which either access
 * a value computed by another processor or compute a value that will
 * be accessed by another processor."
 *
 * @return number of instructions marked.
 */
std::size_t markSharedArrayAccesses(ir::Block &block,
                                    const std::set<std::string>
                                        &shared_arrays);

/** Clear all marks. */
void clearMarks(ir::Block &block);

/** Result of region assignment over a loop body block. */
struct RegionAssignment
{
    bool hasNonBarrier = false;  ///< false when nothing is marked
    std::size_t nbBegin = 0;     ///< first non-barrier instruction
    std::size_t nbEnd = 0;       ///< last non-barrier instruction

    /** Instructions in the non-barrier region. */
    std::size_t
    nonBarrierSize() const
    {
        return hasNonBarrier ? nbEnd - nbBegin + 1 : 0;
    }
};

/**
 * Assign regions per the paper's rule: "All instructions starting
 * with the first marked instruction and ending at the last marked
 * instruction are included in the non-barrier region. The remaining
 * instructions form the barrier region." Sets inRegion on every
 * instruction of @p block and returns the boundaries.
 */
RegionAssignment assignRegions(ir::Block &block);

} // namespace fb::compiler

#endif // FB_COMPILER_REGION_HH
