/**
 * @file
 * Data-dependence DAG over a straight-line TAC block.
 *
 * Paper section 4: "a directed acyclic graph (DAG) representing the
 * data dependences for the code in the non-barrier region is built.
 * Since a DAG represents the dependences among the intermediate code
 * statements, it can be used to find another legal ordering of
 * instructions."
 */

#ifndef FB_COMPILER_DAG_HH
#define FB_COMPILER_DAG_HH

#include <cstddef>
#include <string>
#include <vector>

#include "ir/block.hh"

namespace fb::compiler
{

/** Dependence classes. */
enum class DepKind
{
    Raw,  ///< true dependence (read after write)
    War,  ///< anti dependence (write after read)
    Waw,  ///< output dependence (write after write)
    Mem,  ///< memory ordering (load/store on the same array)
};

/** One dependence edge from an earlier to a later instruction. */
struct DepEdge
{
    std::size_t from;
    std::size_t to;
    DepKind kind;
};

/**
 * The dependence DAG of one ir::Block.
 */
class DependenceDag
{
  public:
    /** Build the DAG for @p block. */
    explicit DependenceDag(const ir::Block &block);

    /** Number of nodes (== block size). */
    std::size_t size() const { return _preds.size(); }

    /** Predecessors of node @p i (instructions that must precede it). */
    const std::vector<std::size_t> &preds(std::size_t i) const;

    /** Successors of node @p i. */
    const std::vector<std::size_t> &succs(std::size_t i) const;

    /** All edges. */
    const std::vector<DepEdge> &edges() const { return _edges; }

    /**
     * True if @p order (a permutation of 0..size-1 giving the new
     * execution order) respects every dependence edge.
     */
    bool validOrder(const std::vector<std::size_t> &order) const;

    /**
     * True if node @p i transitively depends on any node in
     * @p sources.
     */
    bool dependsOnAny(std::size_t i,
                      const std::vector<std::size_t> &sources) const;

  private:
    void addEdge(std::size_t from, std::size_t to, DepKind kind);

    std::vector<std::vector<std::size_t>> _preds;
    std::vector<std::vector<std::size_t>> _succs;
    std::vector<DepEdge> _edges;
};

} // namespace fb::compiler

#endif // FB_COMPILER_DAG_HH
