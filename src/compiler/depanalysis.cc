#include "compiler/depanalysis.hh"

#include <cstdlib>

#include "support/logging.hh"

namespace fb::compiler
{

const char *
depClassName(DepClass cls)
{
    switch (cls) {
      case DepClass::Intra: return "intra";
      case DepClass::LexicallyForward: return "lexically-forward";
      case DepClass::LoopCarried: return "loop-carried";
    }
    return "?";
}

bool
DepAnalysis::needsLoopCarriedBarrier() const
{
    for (const auto &d : deps)
        if (d.cls == DepClass::LoopCarried)
            return true;
    return false;
}

bool
DepAnalysis::needsLexForwardBarrier() const
{
    for (const auto &d : deps)
        if (d.cls == DepClass::LexicallyForward)
            return true;
    return false;
}

std::set<std::size_t>
DepAnalysis::crossInstructions() const
{
    std::set<std::size_t> out;
    for (const auto &d : deps) {
        if (d.cls == DepClass::Intra)
            continue;
        out.insert(d.storeIdx);
        out.insert(d.loadIdx);
    }
    return out;
}

namespace
{

struct Access
{
    std::size_t idx;
    bool isStore;
    const ir::TacInstr *instr;
};

/**
 * Classify one subscript position pair. Distances are deltas between
 * the store's and the load's offsets; crossing and sequential motion
 * accumulate into @p seq_dist / @p proc_crossing. Mismatched or
 * unknown index variables force conservative crossing.
 */
void
classifyPosition(const std::string &store_var, std::int64_t store_off,
                 const std::string &load_var, std::int64_t load_off,
                 const std::set<std::string> &seq_vars,
                 const std::set<std::string> &proc_vars,
                 std::int64_t &seq_dist, std::int64_t &proc_dist,
                 bool &conservative)
{
    if (store_var != load_var) {
        conservative = true;
        return;
    }
    std::int64_t delta = store_off - load_off;
    if (seq_vars.count(store_var))
        seq_dist += delta;
    else if (proc_vars.count(store_var))
        proc_dist += delta;
    else if (delta != 0)
        conservative = true;  // unknown loop structure for this index
}

} // namespace

DepAnalysis
analyzeCrossDeps(const ir::Block &block,
                 const std::set<std::string> &seq_vars,
                 const std::set<std::string> &proc_vars)
{
    std::vector<Access> accesses;
    for (std::size_t i = 0; i < block.size(); ++i) {
        const ir::TacInstr &instr = block.at(i);
        if (instr.op == ir::TacOp::Load)
            accesses.push_back({i, false, &instr});
        else if (instr.op == ir::TacOp::Store)
            accesses.push_back({i, true, &instr});
    }

    DepAnalysis out;
    for (const Access &store : accesses) {
        if (!store.isStore)
            continue;
        for (const Access &load : accesses) {
            if (load.isStore)
                continue;
            if (store.instr->array != load.instr->array ||
                store.instr->array.empty())
                continue;

            CrossDep dep;
            dep.storeIdx = store.idx;
            dep.loadIdx = load.idx;
            dep.array = store.instr->array;
            dep.seqDistance = 0;
            dep.procDistance = 0;

            const ir::Subscript &ss = store.instr->subscript;
            const ir::Subscript &ls = load.instr->subscript;
            bool conservative = !ss.known || !ls.known;
            if (!conservative) {
                classifyPosition(ss.rowVar, ss.rowOff, ls.rowVar,
                                 ls.rowOff, seq_vars, proc_vars,
                                 dep.seqDistance, dep.procDistance,
                                 conservative);
                classifyPosition(ss.colVar, ss.colOff, ls.colVar,
                                 ls.colOff, seq_vars, proc_vars,
                                 dep.seqDistance, dep.procDistance,
                                 conservative);
            }

            if (conservative) {
                // No structured subscripts: assume the worst — a
                // cross-processor loop-carried dependence.
                dep.cls = DepClass::LoopCarried;
            } else if (dep.procDistance == 0 && dep.seqDistance == 0) {
                dep.cls = DepClass::Intra;
            } else if (dep.seqDistance > 0) {
                // The store writes a subscript position the load reads
                // in a later outer iteration.
                dep.cls = DepClass::LoopCarried;
            } else if (dep.seqDistance == 0) {
                // Cross-processor within one outer iteration: only a
                // textually earlier store can supply the value this
                // iteration (the Fig. 8 lexically forward shape);
                // otherwise the value is last iteration's.
                dep.cls = store.idx < load.idx
                              ? DepClass::LexicallyForward
                              : DepClass::LoopCarried;
            } else {
                // Negative sequential distance: the "store" is to a
                // position the load already passed — an anti direction
                // with no flow this way.
                dep.cls = DepClass::Intra;
            }
            out.deps.push_back(dep);
        }
    }
    return out;
}

std::size_t
markFromAnalysis(ir::Block &block, const DepAnalysis &analysis)
{
    auto cross = analysis.crossInstructions();
    std::size_t marked = 0;
    for (std::size_t i = 0; i < block.size(); ++i) {
        bool mark = cross.count(i) != 0;
        block.at(i).marked = mark;
        marked += mark ? 1 : 0;
    }
    return marked;
}

} // namespace fb::compiler
