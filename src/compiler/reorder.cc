#include "compiler/reorder.hh"

#include <algorithm>

#include "compiler/dag.hh"
#include "support/logging.hh"

namespace fb::compiler
{

namespace
{

/** Tracks scheduling state over a dependence DAG. */
class Scheduler
{
  public:
    explicit Scheduler(const DependenceDag &dag)
        : _dag(dag), _scheduled(dag.size(), false),
          _remainingPreds(dag.size())
    {
        for (std::size_t i = 0; i < dag.size(); ++i)
            _remainingPreds[i] = dag.preds(i).size();
    }

    bool done() const { return _order.size() == _dag.size(); }

    bool scheduled(std::size_t i) const { return _scheduled[i]; }

    bool
    ready(std::size_t i) const
    {
        return !_scheduled[i] && _remainingPreds[i] == 0;
    }

    void
    schedule(std::size_t i)
    {
        FB_ASSERT(ready(i), "scheduling a non-ready instruction");
        _scheduled[i] = true;
        _order.push_back(i);
        for (std::size_t s : _dag.succs(i))
            --_remainingPreds[s];
    }

    /** Lowest-index ready node satisfying @p pred, or npos. */
    template <typename Pred>
    std::size_t
    firstReady(Pred pred) const
    {
        for (std::size_t i = 0; i < _dag.size(); ++i)
            if (ready(i) && pred(i))
                return i;
        return npos;
    }

    const std::vector<std::size_t> &order() const { return _order; }

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  private:
    const DependenceDag &_dag;
    std::vector<bool> _scheduled;
    std::vector<std::size_t> _remainingPreds;
    std::vector<std::size_t> _order;
};

} // namespace

ReorderResult
threePhaseReorder(const ir::Block &block)
{
    DependenceDag dag(block);
    Scheduler sched(dag);
    auto marked = block.markedIndices();
    std::vector<bool> is_marked(block.size(), false);
    for (std::size_t m : marked)
        is_marked[m] = true;

    ReorderResult result;

    // Phase 1: every ready unmarked instruction moves to the leading
    // barrier region. Anything (transitively) depending on a marked
    // instruction never becomes ready here.
    for (;;) {
        std::size_t pick = sched.firstReady(
            [&](std::size_t i) { return !is_marked[i]; });
        if (pick == Scheduler::npos)
            break;
        sched.schedule(pick);
        ++result.phase1;
    }

    // Phase 2: schedule marked instructions as early as possible,
    // pulling in required predecessors; all of this forms the
    // non-barrier region.
    std::size_t marked_left = marked.size();
    while (marked_left > 0) {
        std::size_t pick = sched.firstReady(
            [&](std::size_t i) { return is_marked[i]; });
        if (pick != Scheduler::npos) {
            sched.schedule(pick);
            --marked_left;
            ++result.phase2;
            continue;
        }
        // No marked instruction is ready: schedule the first ready
        // instruction that unblocks one (an ancestor of a marked
        // instruction).
        std::vector<std::size_t> unscheduled_marked;
        for (std::size_t m : marked)
            if (!sched.scheduled(m))
                unscheduled_marked.push_back(m);
        pick = sched.firstReady([&](std::size_t i) {
            for (std::size_t m : unscheduled_marked)
                if (dag.dependsOnAny(m, {i}))
                    return true;
            return false;
        });
        FB_ASSERT(pick != Scheduler::npos,
                  "phase 2 wedged: marked instruction unreachable");
        sched.schedule(pick);
        ++result.phase2;
    }

    // Phase 3: the rest moves to the trailing barrier region.
    for (;;) {
        std::size_t pick =
            sched.firstReady([](std::size_t) { return true; });
        if (pick == Scheduler::npos)
            break;
        sched.schedule(pick);
        ++result.phase3;
    }

    FB_ASSERT(sched.done(), "reorder did not schedule every instruction");
    FB_ASSERT(dag.validOrder(sched.order()),
              "reorder produced an illegal order");

    for (std::size_t idx : sched.order())
        result.block.append(block.at(idx));
    result.regions = assignRegions(result.block);
    return result;
}

} // namespace fb::compiler
