#include "compiler/transforms.hh"

#include <algorithm>
#include <map>

#include "support/logging.hh"

namespace fb::compiler
{

std::vector<DistributedLoop>
distributeLoop(const std::vector<Statement> &stmts)
{
    std::vector<DistributedLoop> out;
    for (const Statement &s : stmts)
        if (s.carriesLoopDep)
            out.push_back({s, false});
    for (const Statement &s : stmts)
        if (!s.carriesLoopDep)
            out.push_back({s, true});
    return out;
}

std::size_t
regionExecutionsWithoutDistribution(const std::vector<Statement> &stmts,
                                    std::size_t iterations)
{
    // Fused body: S1; S2; S1; S2; ... The barrier region can only
    // absorb the trailing run of independent statement executions —
    // the executions after the last dependence-carrying one. With the
    // usual S1;S2 shape that is the single final execution of each
    // trailing independent statement (Fig. 5(b)).
    if (iterations == 0)
        return 0;
    std::size_t trailing = 0;
    for (auto it = stmts.rbegin(); it != stmts.rend(); ++it) {
        if (it->carriesLoopDep)
            break;
        ++trailing;
    }
    return trailing;
}

std::size_t
regionExecutionsWithDistribution(const std::vector<Statement> &stmts,
                                 std::size_t iterations)
{
    std::size_t independent = 0;
    for (const Statement &s : stmts)
        independent += s.carriesLoopDep ? 0 : 1;
    return independent * iterations;
}

ir::Block
substituteVarOffset(const ir::Block &block, const std::string &var,
                    std::int64_t offset, int &next_temp)
{
    ir::Block out;
    std::map<int, int> temp_map;
    auto remap = [&](const ir::Operand &op) -> ir::Operand {
        if (op.isTemp()) {
            auto it = temp_map.find(op.tempId());
            if (it == temp_map.end())
                it = temp_map.emplace(op.tempId(), next_temp++).first;
            return ir::Operand::temp(it->second);
        }
        return op;
    };

    // Reads of the loop variable become reads of a temp holding
    // var + offset, computed once at the top of the copy.
    ir::Operand shifted;
    if (offset != 0) {
        shifted = ir::Operand::temp(next_temp++);
        out.append(ir::TacInstr::arith(ir::TacOp::Add, shifted,
                                       ir::Operand::var(var),
                                       ir::Operand::constant(offset)));
    }
    auto subst = [&](const ir::Operand &op) -> ir::Operand {
        if (offset != 0 && op.isVar() && op.name() == var)
            return shifted;
        return remap(op);
    };

    for (const auto &instr : block) {
        ir::TacInstr copy = instr;
        // The destination of a write must not be the substituted
        // variable (the unroller never writes the counter inside the
        // body); sources are substituted.
        if (!copy.dst.isNone()) {
            if (copy.op == ir::TacOp::Store) {
                copy.dst = subst(copy.dst);  // address is a read
            } else {
                FB_ASSERT(!(copy.dst.isVar() && copy.dst.name() == var),
                          "body writes the loop counter; cannot unroll");
                copy.dst = remap(copy.dst);
            }
        }
        copy.a = subst(copy.a);
        copy.b = subst(copy.b);
        out.append(std::move(copy));
    }
    return out;
}

ir::Block
unrollBody(const ir::Block &block, const std::string &counter,
           std::int64_t step, int factor)
{
    FB_ASSERT(factor >= 1, "unroll factor must be >= 1");
    // Find a safe starting temp id.
    int next_temp = 1;
    for (const auto &instr : block) {
        for (const auto &op : {instr.dst, instr.a, instr.b})
            if (op.isTemp())
                next_temp = std::max(next_temp, op.tempId() + 1);
    }

    ir::Block out;
    for (int k = 0; k < factor; ++k) {
        ir::Block copy =
            substituteVarOffset(block, counter, step * k, next_temp);
        for (const auto &instr : copy)
            out.append(instr);
    }
    return out;
}

std::vector<std::vector<int>>
cycleShrink(int trip_count, int distance)
{
    FB_ASSERT(trip_count >= 0, "negative trip count");
    FB_ASSERT(distance >= 1, "dependence distance must be >= 1");
    std::vector<std::vector<int>> groups;
    for (int start = 0; start < trip_count; start += distance) {
        std::vector<int> group;
        for (int i = start; i < std::min(trip_count, start + distance);
             ++i)
            group.push_back(i);
        groups.push_back(std::move(group));
    }
    return groups;
}

IterationRole
roleFor(bool first, bool last)
{
    if (first && last)
        return IterationRole::Only;
    if (first)
        return IterationRole::First;
    if (last)
        return IterationRole::Last;
    return IterationRole::Middle;
}

const char *
iterationRoleName(IterationRole role)
{
    switch (role) {
      case IterationRole::First: return "first";
      case IterationRole::Last: return "last";
      case IterationRole::Middle: return "middle";
      case IterationRole::Only: return "only";
    }
    return "?";
}

bool
roleStartsWithBarrier(IterationRole role)
{
    return role == IterationRole::First || role == IterationRole::Only;
}

bool
roleEndsWithBarrier(IterationRole role)
{
    return role == IterationRole::Last || role == IterationRole::Only;
}

} // namespace fb::compiler
