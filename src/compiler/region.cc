#include "compiler/region.hh"

namespace fb::compiler
{

std::size_t
markSharedArrayAccesses(ir::Block &block,
                        const std::set<std::string> &shared_arrays)
{
    std::size_t marked = 0;
    for (std::size_t i = 0; i < block.size(); ++i) {
        ir::TacInstr &instr = block.at(i);
        if (instr.op != ir::TacOp::Load && instr.op != ir::TacOp::Store)
            continue;
        if (shared_arrays.count(instr.array)) {
            instr.marked = true;
            ++marked;
        }
    }
    return marked;
}

void
clearMarks(ir::Block &block)
{
    for (std::size_t i = 0; i < block.size(); ++i)
        block.at(i).marked = false;
}

RegionAssignment
assignRegions(ir::Block &block)
{
    RegionAssignment out;
    auto marked = block.markedIndices();
    if (marked.empty()) {
        // Nothing crosses the barrier: the whole body may execute
        // while awaiting synchronization.
        for (std::size_t i = 0; i < block.size(); ++i)
            block.at(i).inRegion = true;
        return out;
    }
    out.hasNonBarrier = true;
    out.nbBegin = marked.front();
    out.nbEnd = marked.back();
    for (std::size_t i = 0; i < block.size(); ++i)
        block.at(i).inRegion = i < out.nbBegin || i > out.nbEnd;
    return out;
}

} // namespace fb::compiler
