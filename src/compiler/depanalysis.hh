/**
 * @file
 * Cross-processor dependence analysis over array subscripts.
 *
 * Section 4: "In order to ensure that a processor accesses a value
 * after it has been computed by another processor, barrier
 * synchronization is introduced... by analyzing the loop carried
 * dependences, the instructions that must be included in the
 * non-barrier region can be identified."
 *
 * Section 7.2 distinguishes the second class: "These dependences
 * point forward in the program source and are called lexically
 * forward dependences... in an architecture where processors execute
 * asynchronously, a barrier synchronization is required to guarantee
 * these dependences."
 *
 * The analysis consumes the structured subscripts recorded by the IR
 * builder and classifies every store→load pair on the same array.
 */

#ifndef FB_COMPILER_DEPANALYSIS_HH
#define FB_COMPILER_DEPANALYSIS_HH

#include <set>
#include <string>
#include <vector>

#include "ir/block.hh"

namespace fb::compiler
{

/** Classification of a store→load pair. */
enum class DepClass
{
    Intra,             ///< same processor, same iteration: no barrier
    LexicallyForward,  ///< cross-processor within an iteration (Fig. 8)
    LoopCarried,       ///< crosses outer-loop iterations (Fig. 9)
};

/** Readable name. */
const char *depClassName(DepClass cls);

/** One classified dependence between a store and a load. */
struct CrossDep
{
    std::size_t storeIdx;  ///< index of the store in the block
    std::size_t loadIdx;   ///< index of the load in the block
    std::string array;
    DepClass cls;
    /** Distance in sequential-loop subscript positions (>= 0). */
    std::int64_t seqDistance;
    /** Distance in processor-identifying subscript positions. */
    std::int64_t procDistance;
};

/** Result of the analysis. */
struct DepAnalysis
{
    std::vector<CrossDep> deps;

    /** True if any dependence needs a barrier between outer-loop
     * iterations. */
    bool needsLoopCarriedBarrier() const;

    /** True if any dependence needs a mid-iteration barrier for a
     * lexically forward value. */
    bool needsLexForwardBarrier() const;

    /** Indices of all instructions participating in cross-processor
     * dependences — the marked set of section 4. */
    std::set<std::size_t> crossInstructions() const;
};

/**
 * Analyze @p block, treating subscript variables in @p seq_vars as
 * advanced by the sequential outer loop and those in @p proc_vars as
 * identifying the executing processor. Accesses without structured
 * subscripts on a shared array are classified conservatively as
 * loop-carried with distance 0.
 *
 * Classification of a (store, load) pair on the same array:
 *  - both subscript deltas zero: Intra (the processor reads its own
 *    value within the iteration);
 *  - processor delta nonzero, sequential delta zero: the value
 *    crosses processors within one outer iteration — LexicallyForward
 *    if the store textually precedes the load, otherwise the load can
 *    only be satisfied by the previous iteration's store: LoopCarried;
 *  - sequential delta positive: LoopCarried.
 */
DepAnalysis analyzeCrossDeps(const ir::Block &block,
                             const std::set<std::string> &seq_vars,
                             const std::set<std::string> &proc_vars);

/**
 * Apply the analysis: mark every instruction in a cross-processor
 * dependence (and clear every other mark). Returns the number marked.
 * This replaces hand-marking: assignRegions / threePhaseReorder then
 * build the regions from these marks.
 */
std::size_t markFromAnalysis(ir::Block &block,
                             const DepAnalysis &analysis);

} // namespace fb::compiler

#endif // FB_COMPILER_DEPANALYSIS_HH
