/**
 * @file
 * Snapshot-corruption injection: the crash-model counterpart of the
 * machine-level FaultInjector.
 *
 * A long campaign's snapshots live on real disks and die real deaths:
 * torn writes (truncation), media bit rot (flips), and botched manual
 * copies (an old snapshot parked under the newest generation's name).
 * These helpers inflict each of those, deterministically from a seed,
 * on a SnapshotStore directory so tests and the CI kill/resume job
 * can verify the loader's guarantee: a corrupt snapshot is *never*
 * silently restored — it is either skipped in favour of an older
 * valid generation or rejected with a diagnostic.
 */

#ifndef FB_FAULT_SNAPCORRUPT_HH
#define FB_FAULT_SNAPCORRUPT_HH

#include <cstdint>
#include <string>

#include "snapshot/store.hh"

namespace fb::fault
{

/** The ways a persisted snapshot can rot. */
enum class SnapshotCorruption
{
    /** Cut the file to a seeded prefix — a torn/interrupted write. */
    Truncate,

    /** Flip one seeded bit anywhere in the file — media corruption. */
    BitFlip,

    /**
     * Overwrite the newest generation's file with an older
     * generation's bytes (the embedded generation then disagrees with
     * the filename). With a single generation on disk, the embedded
     * generation field itself is altered instead, which the header
     * CRC catches.
     */
    StaleGeneration,
};

/** Spec name ("truncate" / "bitflip" / "stalegen"). */
const char *snapshotCorruptionName(SnapshotCorruption kind);

/**
 * Apply @p kind to the newest snapshot in @p store. Deterministic for
 * a given (store contents, kind, seed). Returns false with a
 * diagnostic in @p error when the store is empty or I/O fails.
 */
bool corruptNewestSnapshot(const snapshot::SnapshotStore &store,
                           SnapshotCorruption kind, std::uint64_t seed,
                           std::string &error);

/** Which link of the newest delta chain to attack. */
enum class ChainPart
{
    /** The chain head (the newest snapshot, delta or full). */
    Head,

    /**
     * A delta strictly between the head and the base — the case where
     * the head itself validates but replaying the chain under it
     * cannot; the loader must fall back to an older intact chain, not
     * to the (valid-looking) head. Falls back to the head when the
     * chain has no interior delta.
     */
    MidDelta,

    /** The full base snapshot the whole chain hangs from. */
    Base,

    /**
     * The chain manifest: the head delta's base/prev linkage fields
     * are rewritten to name a wrong base, with the header CRC
     * *recomputed* so the file still validates in isolation. Only the
     * chain walk's cross-link consistency checks can catch this; the
     * corruption kind is ignored. Fails when the head is not a delta
     * (a full snapshot carries no linkage to lie about).
     */
    Manifest,
};

/** Spec name ("head" / "middelta" / "base" / "manifest"). */
const char *chainPartName(ChainPart part);

/**
 * Corrupt one link of the newest snapshot chain in @p store: the
 * chain is discovered by following the header `prev` links from the
 * newest generation, the victim link selected per @p part, and @p kind
 * applied to it (except Manifest, which performs its own targeted
 * header rewrite). Deterministic for a given (store contents, part,
 * kind, seed). On success @p victimGeneration (when non-null) reports
 * which generation was attacked.
 */
bool corruptChainSnapshot(const snapshot::SnapshotStore &store,
                          ChainPart part, SnapshotCorruption kind,
                          std::uint64_t seed, std::string &error,
                          std::uint64_t *victimGeneration = nullptr);

} // namespace fb::fault

#endif // FB_FAULT_SNAPCORRUPT_HH
