#include "fault/snapcorrupt.hh"

#include <cstdio>
#include <vector>

#include "snapshot/codec.hh"
#include "snapshot/format.hh"
#include "support/random.hh"

namespace fb::fault
{

namespace
{

/** Plain non-durable overwrite — corruption doesn't fsync. */
bool
writeRaw(const std::string &path, const std::vector<std::uint8_t> &bytes,
         std::string &error)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
        error = "open '" + path + "' for corruption failed";
        return false;
    }
    if (!bytes.empty() &&
        std::fwrite(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
        error = "short write to '" + path + "'";
        std::fclose(f);
        return false;
    }
    std::fclose(f);
    return true;
}

/**
 * Apply @p kind to @p entries[victim]. StaleGeneration parks the
 * next-older entry's bytes under the victim's name when one exists,
 * and otherwise perturbs the embedded generation field (bytes 28..35),
 * which the header CRC catches.
 */
bool
applyCorruption(
    const std::vector<std::pair<std::uint64_t, std::string>> &entries,
    std::size_t victim, SnapshotCorruption kind, std::uint64_t seed,
    std::string &error)
{
    const std::string &path = entries[victim].second;
    std::vector<std::uint8_t> bytes;
    if (!snapshot::readFile(path, bytes, error))
        return false;
    if (bytes.empty()) {
        error = "'" + path + "' is already empty";
        return false;
    }

    RandomSource rng(seed);
    switch (kind) {
      case SnapshotCorruption::Truncate:
        bytes.resize(static_cast<std::size_t>(
            rng.nextBounded(bytes.size())));
        break;
      case SnapshotCorruption::BitFlip: {
        const std::uint64_t bit = rng.nextBounded(bytes.size() * 8);
        bytes[static_cast<std::size_t>(bit / 8)] ^=
            static_cast<std::uint8_t>(1u << (bit % 8));
        break;
      }
      case SnapshotCorruption::StaleGeneration: {
        if (victim > 0) {
            // Park an older generation's bytes under the victim name.
            if (!snapshot::readFile(entries[victim - 1].second, bytes,
                                    error))
                return false;
        } else {
            const std::size_t off = 28;
            if (bytes.size() < off + 8) {
                error = "'" + path + "' too short to carry a header";
                return false;
            }
            bytes[off] ^= 0xff;
        }
        break;
      }
    }
    return writeRaw(path, bytes, error);
}

} // namespace

const char *
snapshotCorruptionName(SnapshotCorruption kind)
{
    switch (kind) {
      case SnapshotCorruption::Truncate:
        return "truncate";
      case SnapshotCorruption::BitFlip:
        return "bitflip";
      case SnapshotCorruption::StaleGeneration:
        return "stalegen";
    }
    return "?";
}

const char *
chainPartName(ChainPart part)
{
    switch (part) {
      case ChainPart::Head:
        return "head";
      case ChainPart::MidDelta:
        return "middelta";
      case ChainPart::Base:
        return "base";
      case ChainPart::Manifest:
        return "manifest";
    }
    return "?";
}

bool
corruptNewestSnapshot(const snapshot::SnapshotStore &store,
                      SnapshotCorruption kind, std::uint64_t seed,
                      std::string &error)
{
    auto entries = store.list();
    if (entries.empty()) {
        error = "no snapshots in '" + store.directory() + "' to corrupt";
        return false;
    }
    return applyCorruption(entries, entries.size() - 1, kind, seed,
                           error);
}

bool
corruptChainSnapshot(const snapshot::SnapshotStore &store,
                     ChainPart part, SnapshotCorruption kind,
                     std::uint64_t seed, std::string &error,
                     std::uint64_t *victimGeneration)
{
    auto entries = store.list();
    if (entries.empty()) {
        error = "no snapshots in '" + store.directory() + "' to corrupt";
        return false;
    }

    // Discover the newest chain: entry indices head-first, following
    // the header prev links down to the full base.
    std::vector<std::size_t> links;
    std::size_t at = entries.size() - 1;
    for (;;) {
        std::vector<std::uint8_t> bytes;
        snapshot::SnapshotHeader header;
        if (!snapshot::readFile(entries[at].second, bytes, error) ||
            !snapshot::peekHeader(bytes, header, error)) {
            error = "chain walk: " + entries[at].second + ": " + error;
            return false;
        }
        links.push_back(at);
        if (!header.isDelta())
            break;
        bool found = false;
        for (std::size_t i = 0; i < entries.size(); ++i) {
            if (entries[i].first == header.prev) {
                at = i;
                found = true;
                break;
            }
        }
        if (!found) {
            error = "chain walk: generation " +
                    std::to_string(header.prev) + " is missing";
            return false;
        }
    }

    std::size_t victim = links.front();
    switch (part) {
      case ChainPart::Head:
        break;
      case ChainPart::MidDelta: {
        // Interior deltas: every link except the head and the base.
        // Fall back to the head when the chain is too short.
        if (links.size() > 2) {
            RandomSource rng(seed ^ 0x6d696464u);
            victim = links[1 + static_cast<std::size_t>(
                rng.nextBounded(links.size() - 2))];
        }
        break;
      }
      case ChainPart::Base:
        victim = links.back();
        break;
      case ChainPart::Manifest: {
        // Rewrite the head delta's baseFull field to name a wrong
        // base and *recompute* the header CRC: the file then still
        // validates in isolation, and only the chain walk's
        // cross-link consistency check can reject it.
        const std::string &path = entries[victim].second;
        std::vector<std::uint8_t> bytes;
        snapshot::SnapshotHeader header;
        if (!snapshot::readFile(path, bytes, error) ||
            !snapshot::peekHeader(bytes, header, error))
            return false;
        if (!header.isDelta()) {
            error = "'" + path +
                    "' is a full snapshot; it has no chain manifest";
            return false;
        }
        const std::uint64_t bogus = header.baseFull + 1;
        for (std::size_t i = 0; i < 8; ++i)
            bytes[36 + i] =
                static_cast<std::uint8_t>(bogus >> (8 * i));
        const std::uint32_t crc = snapshot::crc32(bytes.data(), 56);
        for (std::size_t i = 0; i < 4; ++i)
            bytes[56 + i] = static_cast<std::uint8_t>(crc >> (8 * i));
        if (victimGeneration != nullptr)
            *victimGeneration = entries[victim].first;
        return writeRaw(path, bytes, error);
      }
    }

    if (victimGeneration != nullptr)
        *victimGeneration = entries[victim].first;
    return applyCorruption(entries, victim, kind, seed, error);
}

} // namespace fb::fault
