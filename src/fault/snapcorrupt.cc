#include "fault/snapcorrupt.hh"

#include <cstdio>
#include <vector>

#include "support/random.hh"

namespace fb::fault
{

namespace
{

/** Plain non-durable overwrite — corruption doesn't fsync. */
bool
writeRaw(const std::string &path, const std::vector<std::uint8_t> &bytes,
         std::string &error)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
        error = "open '" + path + "' for corruption failed";
        return false;
    }
    if (!bytes.empty() &&
        std::fwrite(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
        error = "short write to '" + path + "'";
        std::fclose(f);
        return false;
    }
    std::fclose(f);
    return true;
}

} // namespace

const char *
snapshotCorruptionName(SnapshotCorruption kind)
{
    switch (kind) {
      case SnapshotCorruption::Truncate:
        return "truncate";
      case SnapshotCorruption::BitFlip:
        return "bitflip";
      case SnapshotCorruption::StaleGeneration:
        return "stalegen";
    }
    return "?";
}

bool
corruptNewestSnapshot(const snapshot::SnapshotStore &store,
                      SnapshotCorruption kind, std::uint64_t seed,
                      std::string &error)
{
    auto entries = store.list();
    if (entries.empty()) {
        error = "no snapshots in '" + store.directory() + "' to corrupt";
        return false;
    }
    const std::string &victim = entries.back().second;
    std::vector<std::uint8_t> bytes;
    if (!snapshot::readFile(victim, bytes, error))
        return false;
    if (bytes.empty()) {
        error = "'" + victim + "' is already empty";
        return false;
    }

    RandomSource rng(seed);
    switch (kind) {
      case SnapshotCorruption::Truncate:
        bytes.resize(static_cast<std::size_t>(
            rng.nextBounded(bytes.size())));
        break;
      case SnapshotCorruption::BitFlip: {
        const std::uint64_t bit = rng.nextBounded(bytes.size() * 8);
        bytes[static_cast<std::size_t>(bit / 8)] ^=
            static_cast<std::uint8_t>(1u << (bit % 8));
        break;
      }
      case SnapshotCorruption::StaleGeneration: {
        if (entries.size() >= 2) {
            // Park an older generation's bytes under the newest name.
            if (!snapshot::readFile(entries[entries.size() - 2].second,
                                    bytes, error))
                return false;
        } else {
            // Single generation: perturb the embedded generation
            // field (bytes 28..35 of the header); the header CRC no
            // longer matches, so the loader rejects the file.
            const std::size_t off = 28;
            if (bytes.size() < off + 8) {
                error = "'" + victim + "' too short to carry a header";
                return false;
            }
            bytes[off] ^= 0xff;
        }
        break;
      }
    }
    return writeRaw(victim, bytes, error);
}

} // namespace fb::fault
