#include "fault/injector.hh"

#include <algorithm>
#include <limits>
#include <sstream>

#include "support/logging.hh"

namespace fb::fault
{

FaultInjector::FaultInjector(const FaultPlan &plan, int num_procs)
    : _plan(plan), _numProcs(num_procs),
      _killReported(plan.events.size(), false),
      _flipApplied(plan.events.size(), false)
{
    FB_ASSERT(num_procs > 0, "need at least one processor");
    _plan.normalize();
    for (const auto &ev : _plan.events) {
        FB_ASSERT(ev.proc >= 0 && ev.proc < num_procs,
                  "fault event targets processor " << ev.proc
                      << " of " << num_procs);
    }
}

std::uint64_t
FaultInjector::windowEnd(const FaultEvent &ev)
{
    switch (ev.kind) {
      case FaultKind::DropPulse:
      case FaultKind::IrqStorm:
        return ev.cycle + std::max<std::uint64_t>(1, ev.arg);
      case FaultKind::Freeze:
        if (ev.arg == 0)
            return std::numeric_limits<std::uint64_t>::max();
        return ev.cycle + ev.arg;
      case FaultKind::FlipTagBit:
      case FaultKind::FlipMaskBit:
      case FaultKind::Kill:
        return ev.cycle + 1;
    }
    panic("unknown fault kind");
}

void
FaultInjector::beginCycle(std::uint64_t now,
                          barrier::BarrierNetwork &net)
{
    for (std::size_t i = 0; i < _plan.events.size(); ++i) {
        const FaultEvent &ev = _plan.events[i];
        switch (ev.kind) {
          case FaultKind::FlipTagBit:
          case FaultKind::FlipMaskBit:
            if (now >= ev.cycle && !_flipApplied[i]) {
                _flipApplied[i] = true;
                ++_stats.bitsFlipped;
                if (ev.kind == FaultKind::FlipTagBit)
                    net.unit(ev.proc).corruptTagBit(
                        static_cast<int>(ev.arg));
                else
                    net.unit(ev.proc).corruptMaskBit(
                        static_cast<int>(ev.arg) % _numProcs);
            }
            break;
          case FaultKind::DropPulse:
            if (now >= ev.cycle && now < windowEnd(ev)) {
                ++_stats.pulseDropCycles;
                std::ostringstream oss;
                oss << "fault: dropping ready pulse of cpu" << ev.proc
                    << " at cycle " << now;
                warnRatelimited("fault.drop", oss.str(), 256);
            }
            break;
          case FaultKind::Freeze:
            if (now == ev.cycle)
                ++_stats.freezes;
            break;
          case FaultKind::Kill:
          case FaultKind::IrqStorm:
            break;
        }
    }
}

std::vector<int>
FaultInjector::killsDue(std::uint64_t now)
{
    std::vector<int> due;
    for (std::size_t i = 0; i < _plan.events.size(); ++i) {
        const FaultEvent &ev = _plan.events[i];
        if (ev.kind == FaultKind::Kill && now >= ev.cycle &&
            !_killReported[i]) {
            _killReported[i] = true;
            ++_stats.kills;
            due.push_back(ev.proc);
        }
    }
    return due;
}

bool
FaultInjector::frozen(int p, std::uint64_t now) const
{
    for (const auto &ev : _plan.events) {
        if (ev.kind == FaultKind::Freeze && ev.proc == p &&
            now >= ev.cycle && now < windowEnd(ev))
            return true;
    }
    return false;
}

bool
FaultInjector::frozenForever(int p, std::uint64_t now) const
{
    for (const auto &ev : _plan.events) {
        if (ev.kind == FaultKind::Freeze && ev.proc == p &&
            ev.arg == 0 && now >= ev.cycle)
            return true;
    }
    return false;
}

bool
FaultInjector::stormActive(int p, std::uint64_t now) const
{
    for (const auto &ev : _plan.events) {
        if (ev.kind == FaultKind::IrqStorm && ev.proc == p &&
            now >= ev.cycle && now < windowEnd(ev))
            return true;
    }
    return false;
}

bool
FaultInjector::suppress(int p, std::uint64_t now) const
{
    for (const auto &ev : _plan.events) {
        if (ev.kind == FaultKind::DropPulse && ev.proc == p &&
            now >= ev.cycle && now < windowEnd(ev))
            return true;
    }
    return false;
}

bool
FaultInjector::pendingActivity(std::uint64_t now) const
{
    for (const auto &ev : _plan.events) {
        if (now < ev.cycle)
            return true;  // not fired yet
        // An open transient window still changes machine behaviour; a
        // fatal event that has fired never will again, so it must not
        // suppress deadlock detection (a forever-frozen blocker with
        // no watchdog IS a deadlock, and should be reported as one).
        if (!ev.fatal() && now < windowEnd(ev))
            return true;
    }
    return false;
}

std::uint64_t
FaultInjector::nextActivityCycle(std::uint64_t now) const
{
    constexpr std::uint64_t never =
        std::numeric_limits<std::uint64_t>::max();
    std::uint64_t next = never;
    for (std::size_t i = 0; i < _plan.events.size(); ++i) {
        const FaultEvent &ev = _plan.events[i];
        if (now < ev.cycle) {
            // Not fired yet: the scheduled cycle is the event.
            next = std::min(next, ev.cycle);
            continue;
        }
        switch (ev.kind) {
          case FaultKind::DropPulse:
          case FaultKind::IrqStorm:
            // Open windows act every cycle (dropped-pulse stats,
            // forced interrupts) — nothing may be skipped.
            if (now < windowEnd(ev))
                return now + 1;
            break;
          case FaultKind::Freeze:
            // A frozen processor next changes behaviour when it
            // thaws; a fatal freeze (windowEnd = max) never does.
            if (now < windowEnd(ev))
                next = std::min(next, windowEnd(ev));
            break;
          case FaultKind::FlipTagBit:
          case FaultKind::FlipMaskBit:
            if (!_flipApplied[i])
                return now + 1;
            break;
          case FaultKind::Kill:
            if (!_killReported[i])
                return now + 1;
            break;
        }
    }
    return next;
}

void
FaultInjector::encodeState(snapshot::Encoder &e) const
{
    e.boolVec(_killReported);
    e.boolVec(_flipApplied);
    e.u64(_stats.pulseDropCycles);
    e.u64(_stats.bitsFlipped);
    e.u64(_stats.kills);
    e.u64(_stats.freezes);
    e.u64(_stats.forcedInterrupts);
}

bool
FaultInjector::decodeState(snapshot::Decoder &d)
{
    const std::size_t kills = _killReported.size();
    const std::size_t flips = _flipApplied.size();
    d.boolVec(_killReported);
    d.boolVec(_flipApplied);
    _stats.pulseDropCycles = d.u64();
    _stats.bitsFlipped = d.u64();
    _stats.kills = d.u64();
    _stats.freezes = d.u64();
    _stats.forcedInterrupts = d.u64();
    return d.ok() && _killReported.size() == kills &&
           _flipApplied.size() == flips;
}

} // namespace fb::fault
