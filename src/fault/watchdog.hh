/**
 * @file
 * Barrier watchdog: detects dead participants in stuck groups.
 *
 * The hardware barrier itself has no notion of failure — a group
 * whose member never arrives simply stalls its partners forever (the
 * paper assumes immortal processors). The watchdog adds a per-tag
 * timer: when a group has waiters but its AND stays unsatisfied past
 * a timeout, the blockers are examined. A blocker that has *halted*
 * can never arrive and is declared dead immediately; a blocker that
 * is still live might just be slow, so the timer re-arms with
 * exponential backoff and only declares death after maxAttempts
 * consecutive timeouts — the straggler/dead distinction the recovery
 * protocol needs to avoid fencing a slow-but-alive processor.
 */

#ifndef FB_FAULT_WATCHDOG_HH
#define FB_FAULT_WATCHDOG_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "barrier/network.hh"
#include "snapshot/codec.hh"

namespace fb::fault
{

/** Watchdog tuning knobs (see docs/INTERNALS.md section 13). */
struct WatchdogConfig
{
    bool enabled = false;

    /** Cycles a group may have unsatisfied waiters before the first
     * timeout fires. Must exceed the longest legitimate barrier wait
     * of the workload or live stragglers burn re-arm attempts. */
    std::uint64_t timeoutCycles = 10'000;

    /**
     * Consecutive timeouts (with exponentially growing windows:
     * T, 2T, 4T, ...) before a still-live blocker is declared dead.
     * Halted blockers skip the backoff — a fail-stopped processor
     * provably cannot arrive. A live blocker is only declared dead
     * after the group has been continuously stuck for
     * T * (2^maxAttempts - 1) cycles.
     */
    int maxAttempts = 3;
};

/** Counters for reports and the recovery-liveness oracle. */
struct WatchdogStats
{
    std::uint64_t timeouts = 0;      ///< timer expiries (incl. re-arms)
    std::uint64_t rearms = 0;        ///< backoff re-arms (live blockers)
    std::uint64_t deadDeclared = 0;  ///< processors declared dead
};

/**
 * One watchdog instance per machine, ticked once per cycle after the
 * network evaluates. Purely observational between timeouts: the
 * caller (sim::Machine) applies the recovery protocol to whatever
 * tick() returns.
 */
class BarrierWatchdog
{
  public:
    BarrierWatchdog(const WatchdogConfig &config, int num_procs);

    /**
     * Advance one cycle. @p halted marks processors that can never
     * arrive again (HALT, fail-stop kill, or already fenced by a
     * previous recovery). Returns the processors to declare dead this
     * cycle (usually empty).
     */
    std::vector<int> tick(const barrier::BarrierNetwork &net,
                          const std::vector<bool> &halted,
                          std::uint64_t now);

    /** True while any group timer is armed — the machine must not
     * report deadlock while the watchdog is still deliberating. */
    bool armed() const { return !_timers.empty(); }

    /**
     * Earliest armed deadline (UINT64_MAX when no timer is armed).
     * Between deadlines, tick() only re-derives the waiting set —
     * which is constant while unit states, delivery status and halt
     * flags are — so the fast-forward core may skip to this cycle.
     */
    std::uint64_t nextDeadline() const
    {
        std::uint64_t next = ~std::uint64_t{0};
        for (const auto &[tag, timer] : _timers)
            next = std::min(next, timer.deadline);
        return next;
    }

    const WatchdogStats &stats() const { return _stats; }

    /** Serialize armed timers (deadline + backoff) and counters. */
    void encodeState(snapshot::Encoder &e) const
    {
        e.u64(_timers.size());
        for (const auto &[tag, timer] : _timers) {
            e.u32(tag);
            e.u64(timer.deadline);
            e.u64(static_cast<std::uint64_t>(timer.attempts));
        }
        e.u64(_stats.timeouts);
        e.u64(_stats.rearms);
        e.u64(_stats.deadDeclared);
    }

    /** Restore state captured with encodeState(). */
    bool decodeState(snapshot::Decoder &d)
    {
        _timers.clear();
        const std::uint64_t timers = d.u64();
        for (std::uint64_t k = 0; k < timers && d.ok(); ++k) {
            const std::uint32_t tag = d.u32();
            Timer timer;
            timer.deadline = d.u64();
            timer.attempts = static_cast<int>(d.u64());
            _timers[tag] = timer;
        }
        _stats.timeouts = d.u64();
        _stats.rearms = d.u64();
        _stats.deadDeclared = d.u64();
        return d.ok();
    }

  private:
    struct Timer
    {
        std::uint64_t deadline = 0;
        int attempts = 0;  ///< timeouts already spent on live blockers
    };

    WatchdogConfig _config;
    int _numProcs;
    /** Armed timers keyed by barrier tag. */
    std::map<std::uint32_t, Timer> _timers;
    WatchdogStats _stats;
};

} // namespace fb::fault

#endif // FB_FAULT_WATCHDOG_HH
