#include "fault/watchdog.hh"

#include <algorithm>
#include <set>

#include "support/logging.hh"

namespace fb::fault
{

BarrierWatchdog::BarrierWatchdog(const WatchdogConfig &config,
                                 int num_procs)
    : _config(config), _numProcs(num_procs)
{
    FB_ASSERT(num_procs > 0, "need at least one processor");
    FB_ASSERT(!config.enabled || config.timeoutCycles > 0,
              "watchdog timeout must be positive");
    FB_ASSERT(!config.enabled || config.maxAttempts >= 1,
              "watchdog needs at least one attempt");
}

std::vector<int>
BarrierWatchdog::tick(const barrier::BarrierNetwork &net,
                      const std::vector<bool> &halted, std::uint64_t now)
{
    std::vector<int> dead;
    if (!_config.enabled)
        return dead;

    // A tag is "stuck" when some live member broadcasts readiness, no
    // delivery is in flight for it, and the group AND is unsatisfied.
    // Per-tag state matches the hardware: the tag names the logical
    // barrier, and disjoint groups use distinct tags.
    // Only units asserting readiness can be waiting, so walk the
    // network's ready set instead of every processor: O(waiting), not
    // O(nprocs), per cycle.
    std::map<std::uint32_t, int> waiting;  // tag -> first waiting proc
    net.readySet().forEach([&](std::size_t sp) {
        const int p = static_cast<int>(sp);
        if (halted[sp])
            return;
        const auto &u = net.unit(p);
        if (u.tag() == 0)
            return;
        if (net.deliveryPendingFor(p))
            return;  // the AND is satisfied; sync is propagating
        waiting.emplace(u.tag(), p);
    });

    // Disarm timers for tags that are no longer stuck.
    for (auto it = _timers.begin(); it != _timers.end();) {
        if (waiting.count(it->first) == 0)
            it = _timers.erase(it);
        else
            ++it;
    }

    for (auto &[tag, witness] : waiting) {
        auto [it, armed_now] = _timers.try_emplace(tag);
        Timer &timer = it->second;
        if (armed_now)
            timer.deadline = now + _config.timeoutCycles;
        if (now < timer.deadline)
            continue;

        ++_stats.timeouts;

        // The blockers are the mask members whose broadcast input the
        // witness's AND is missing: not ready, a mismatched tag, or a
        // stale epoch.
        const auto &u = net.unit(witness);
        std::set<int> halted_blockers;
        std::set<int> live_blockers;
        u.mask().forEachSet([&](std::size_t sq) {
            const int q = static_cast<int>(sq);
            const auto &other = net.unit(q);
            if (net.signalVisible(q, now) && other.tag() == u.tag() &&
                other.epoch() == u.epoch())
                return;  // this input is satisfied
            if (halted[sq])
                halted_blockers.insert(q);
            else
                live_blockers.insert(q);
        });

        if (!halted_blockers.empty()) {
            // Fast path: a fail-stopped blocker provably cannot
            // arrive. Declare it dead without burning backoff
            // attempts; any live blockers get a fresh timer once the
            // recovery has taken effect.
            for (int q : halted_blockers)
                dead.push_back(q);
            _timers.erase(it);
            continue;
        }

        if (live_blockers.empty()) {
            // The AND became satisfied this very cycle; nothing to do.
            _timers.erase(it);
            continue;
        }

        ++timer.attempts;
        if (timer.attempts >= _config.maxAttempts) {
            // Backoff exhausted: the blocker is silently dead (frozen,
            // not fail-stopped) or the program is wedged; either way
            // the survivors need their barrier back.
            for (int q : live_blockers)
                dead.push_back(q);
            _timers.erase(it);
            continue;
        }

        // Might still be a straggler: re-arm with an exponentially
        // longer window.
        ++_stats.rearms;
        timer.deadline =
            now + (_config.timeoutCycles << timer.attempts);
    }

    std::sort(dead.begin(), dead.end());
    dead.erase(std::unique(dead.begin(), dead.end()), dead.end());
    _stats.deadDeclared += dead.size();
    return dead;
}

} // namespace fb::fault
