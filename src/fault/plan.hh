/**
 * @file
 * Deterministic, replayable fault schedules.
 *
 * A FaultPlan is a list of cycle-scheduled fault events against named
 * processors: dropped broadcast ready-pulses, flipped tag/mask
 * register bits, fail-stop kills, finite or indefinite freezes, and
 * interrupt storms. Plans serialize to a compact one-line-per-event
 * text form (`kind@cycle:proc[:arg]`) that round-trips byte-exactly,
 * so a fault schedule embedded in an .fbrepro reproducer replays
 * identically anywhere — the same property the scenario format has.
 *
 * Plans carry no machine state: the FaultInjector interprets one
 * against a running machine.
 */

#ifndef FB_FAULT_PLAN_HH
#define FB_FAULT_PLAN_HH

#include <cstdint>
#include <string>
#include <vector>

namespace fb::fault
{

/** The kinds of injected faults. */
enum class FaultKind
{
    /** Suppress the processor's broadcast ready-pulse for arg cycles
     * (default 1): the level signal vanishes from every AND network
     * input, delaying — never corrupting — synchronization. */
    DropPulse,

    /** Flip bit arg of the tag register. The unit's ECC shadow
     * corrects it at the next network evaluation (see unit.hh). */
    FlipTagBit,

    /** Flip mask bit arg. Corrected like FlipTagBit. */
    FlipMaskBit,

    /** Fail-stop: the processor halts permanently at the cycle. */
    Kill,

    /** Stall the processor for arg cycles; arg 0 freezes it forever
     * (silent death — indistinguishable from a straggler except by
     * watchdog backoff exhaustion). */
    Freeze,

    /** Force a timer interrupt every cycle for arg cycles (default 1).
     * A no-op when the program has no ISR. */
    IrqStorm,
};

/** Spec name of a kind ("drop", "fliptag", ...). */
const char *faultKindName(FaultKind kind);

/** One scheduled fault. */
struct FaultEvent
{
    FaultKind kind = FaultKind::DropPulse;
    std::uint64_t cycle = 0;  ///< machine cycle the fault fires
    int proc = 0;             ///< target processor
    std::uint64_t arg = 0;    ///< kind-specific argument

    /** True for faults the target never executes past (Kill, or
     * Freeze with arg 0). */
    bool fatal() const;

    /** `kind@cycle:proc[:arg]` (arg omitted when 0). */
    std::string toSpec() const;

    bool operator==(const FaultEvent &o) const
    {
        return kind == o.kind && cycle == o.cycle && proc == o.proc &&
               arg == o.arg;
    }
};

/** A deterministic fault schedule. */
struct FaultPlan
{
    std::vector<FaultEvent> events;

    bool empty() const { return events.empty(); }

    /** True if any event is fatal (see FaultEvent::fatal). */
    bool hasFatal() const;

    /** Sorted, deduplicated processor ids targeted by fatal faults. */
    std::vector<int> fatalTargets() const;

    /** Sort events by (cycle, proc, kind, arg) so serialization is
     * canonical regardless of construction order. */
    void normalize();

    /** Comma-separated event specs (normalized order assumed). */
    std::string toSpec() const;

    /**
     * Parse a comma- or whitespace-separated list of event specs.
     * Returns false and sets @p error on malformed input; errors name
     * the offending spec by position. Rejects trailing/doubled field
     * separators and same-kind duplicate events for one (cycle, proc)
     * — the injector would apply an unspecified one of them.
     */
    static bool parse(const std::string &text, FaultPlan &out,
                      std::string &error);

    /**
     * Like the two-argument parse(), additionally rejecting events
     * whose processor id is outside [0, num_procs). Pass a negative
     * @p num_procs to skip the range check (unknown machine size).
     */
    static bool parse(const std::string &text, int num_procs,
                      FaultPlan &out, std::string &error);

    bool operator==(const FaultPlan &o) const
    {
        return events == o.events;
    }
};

/**
 * Derive a random fault plan from @p seed for a machine of
 * @p num_procs processors partitioned into contiguous @p group_sizes
 * (the verify-scenario layout; pass {num_procs} for one group).
 *
 * The plan is constrained so recovery is possible: at most one fatal
 * fault, and only against a group that keeps at least one survivor.
 * Transient faults (drops, flips, storms, finite freezes) use short
 * windows (<= 64 cycles) so they perturb timing without outlasting
 * any sane watchdog timeout. Identical seeds yield identical plans.
 */
FaultPlan randomFaultPlan(std::uint64_t seed, int num_procs,
                          const std::vector<int> &group_sizes,
                          std::uint64_t horizon = 2000);

} // namespace fb::fault

#endif // FB_FAULT_PLAN_HH
