#include "fault/plan.hh"

#include <algorithm>
#include <sstream>

#include "support/logging.hh"
#include "support/random.hh"
#include "support/strutil.hh"

namespace fb::fault
{

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::DropPulse: return "drop";
      case FaultKind::FlipTagBit: return "fliptag";
      case FaultKind::FlipMaskBit: return "flipmask";
      case FaultKind::Kill: return "kill";
      case FaultKind::Freeze: return "freeze";
      case FaultKind::IrqStorm: return "irqstorm";
    }
    panic("unknown fault kind");
}

namespace
{

bool
kindFromName(const std::string &name, FaultKind &out)
{
    for (FaultKind k :
         {FaultKind::DropPulse, FaultKind::FlipTagBit,
          FaultKind::FlipMaskBit, FaultKind::Kill, FaultKind::Freeze,
          FaultKind::IrqStorm}) {
        if (name == faultKindName(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

} // namespace

bool
FaultEvent::fatal() const
{
    return kind == FaultKind::Kill ||
           (kind == FaultKind::Freeze && arg == 0);
}

std::string
FaultEvent::toSpec() const
{
    std::ostringstream oss;
    oss << faultKindName(kind) << "@" << cycle << ":" << proc;
    if (arg != 0)
        oss << ":" << arg;
    return oss.str();
}

bool
FaultPlan::hasFatal() const
{
    for (const auto &e : events) {
        if (e.fatal())
            return true;
    }
    return false;
}

std::vector<int>
FaultPlan::fatalTargets() const
{
    std::vector<int> targets;
    for (const auto &e : events) {
        if (e.fatal())
            targets.push_back(e.proc);
    }
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()),
                  targets.end());
    return targets;
}

void
FaultPlan::normalize()
{
    std::sort(events.begin(), events.end(),
              [](const FaultEvent &a, const FaultEvent &b) {
                  if (a.cycle != b.cycle)
                      return a.cycle < b.cycle;
                  if (a.proc != b.proc)
                      return a.proc < b.proc;
                  if (a.kind != b.kind)
                      return static_cast<int>(a.kind) <
                             static_cast<int>(b.kind);
                  return a.arg < b.arg;
              });
}

std::string
FaultPlan::toSpec() const
{
    std::ostringstream oss;
    for (std::size_t i = 0; i < events.size(); ++i) {
        if (i > 0)
            oss << ",";
        oss << events[i].toSpec();
    }
    return oss.str();
}

bool
FaultPlan::parse(const std::string &text, FaultPlan &out,
                 std::string &error)
{
    return parse(text, -1, out, error);
}

bool
FaultPlan::parse(const std::string &text, int num_procs, FaultPlan &out,
                 std::string &error)
{
    FaultPlan plan;
    std::string normalized = text;
    for (char &c : normalized) {
        if (c == ',')
            c = ' ';
    }
    std::size_t index = 0;
    for (const std::string &spec : splitWhitespace(normalized)) {
        ++index;
        // Positional prefix so a long command-line plan points at the
        // offending entry, not just its text.
        std::ostringstream where;
        where << "fault spec #" << index << " ('" << spec << "')";
        auto at = spec.find('@');
        if (at == std::string::npos || at == 0) {
            error = where.str() + ": expected kind@cycle:proc";
            return false;
        }
        FaultEvent ev;
        if (!kindFromName(spec.substr(0, at), ev.kind)) {
            error = where.str() + ": unknown kind '" +
                    spec.substr(0, at) + "'";
            return false;
        }
        // split() drops empty fields, which would make a trailing or
        // doubled ':' parse as if it were never typed; keep empties
        // so those malformed specs are rejected below.
        std::vector<std::string> fields;
        {
            const std::string rest = spec.substr(at + 1);
            std::size_t start = 0;
            for (;;) {
                const auto pos = rest.find(':', start);
                if (pos == std::string::npos) {
                    fields.push_back(rest.substr(start));
                    break;
                }
                fields.push_back(rest.substr(start, pos - start));
                start = pos + 1;
            }
        }
        if (fields.size() < 2 || fields.size() > 3) {
            error = where.str() + ": expected kind@cycle:proc[:arg]";
            return false;
        }
        for (const std::string &f : fields) {
            if (f.empty()) {
                error = where.str() +
                        ": empty field (trailing or doubled ':')";
                return false;
            }
        }
        std::int64_t v = 0;
        if (!parseInt(fields[0], v) || v < 0) {
            error = where.str() + ": bad cycle '" + fields[0] + "'";
            return false;
        }
        ev.cycle = static_cast<std::uint64_t>(v);
        if (!parseInt(fields[1], v) || v < 0) {
            error = where.str() + ": bad processor '" + fields[1] + "'";
            return false;
        }
        ev.proc = static_cast<int>(v);
        if (num_procs >= 0 && ev.proc >= num_procs) {
            std::ostringstream oss;
            oss << where.str() << ": processor " << ev.proc
                << " out of range (machine has " << num_procs
                << " processors)";
            error = oss.str();
            return false;
        }
        if (fields.size() == 3) {
            if (!parseInt(fields[2], v) || v < 0) {
                error = where.str() + ": bad argument '" + fields[2] +
                        "'";
                return false;
            }
            ev.arg = static_cast<std::uint64_t>(v);
        }
        plan.events.push_back(ev);
    }
    plan.normalize();
    // Two identical-kind events for the same (cycle, proc) are
    // ambiguous: the injector would apply an unspecified one of the
    // duplicates' arguments (or both). Reject rather than guess.
    for (std::size_t i = 1; i < plan.events.size(); ++i) {
        const FaultEvent &a = plan.events[i - 1];
        const FaultEvent &b = plan.events[i];
        if (a.kind == b.kind && a.cycle == b.cycle && a.proc == b.proc) {
            std::ostringstream oss;
            oss << "ambiguous fault plan: duplicate "
                << faultKindName(a.kind) << " events for processor "
                << a.proc << " at cycle " << a.cycle << " ('"
                << a.toSpec() << "' vs '" << b.toSpec() << "')";
            error = oss.str();
            return false;
        }
    }
    out = std::move(plan);
    return true;
}

FaultPlan
randomFaultPlan(std::uint64_t seed, int num_procs,
                const std::vector<int> &group_sizes,
                std::uint64_t horizon)
{
    FB_ASSERT(num_procs > 0, "need at least one processor");
    FB_ASSERT(horizon >= 16, "fault horizon too small");
    RandomSource rng(seed ^ 0xfa17b0a7d5eedULL);
    FaultPlan plan;

    auto randomCycle = [&] {
        return 8 + rng.nextBounded(horizon - 8);
    };
    auto randomProc = [&] {
        return static_cast<int>(
            rng.nextBounded(static_cast<std::uint64_t>(num_procs)));
    };

    // At most one fatal fault, and only against a group that keeps a
    // survivor, so the epoch/mask-shrink recovery always has a live
    // quorum to shrink to.
    if (rng.nextBool(0.5)) {
        int first = 0;
        int target = -1;
        for (int size : group_sizes) {
            if (size >= 2 && target < 0 && rng.nextBool(0.6))
                target = first + static_cast<int>(rng.nextBounded(
                                     static_cast<std::uint64_t>(size)));
            first += size;
        }
        if (target < 0 && !group_sizes.empty() && group_sizes[0] >= 2)
            target = static_cast<int>(
                rng.nextBounded(static_cast<std::uint64_t>(
                    group_sizes[0])));
        if (target >= 0) {
            FaultEvent ev;
            ev.kind = rng.nextBool(0.7) ? FaultKind::Kill
                                        : FaultKind::Freeze;
            ev.cycle = randomCycle();
            ev.proc = target;
            ev.arg = 0;
            plan.events.push_back(ev);
        }
    }

    // A handful of transient faults. Windows stay <= 64 cycles, far
    // below any sane watchdog timeout, so they perturb timing without
    // masquerading as death.
    const int transients = static_cast<int>(rng.nextBounded(4));
    for (int i = 0; i < transients; ++i) {
        FaultEvent ev;
        switch (rng.nextBounded(4)) {
          case 0:
            ev.kind = FaultKind::DropPulse;
            ev.arg = 1 + rng.nextBounded(64);
            break;
          case 1:
            ev.kind = FaultKind::FlipTagBit;
            ev.arg = rng.nextBounded(8);
            break;
          case 2:
            ev.kind = FaultKind::FlipMaskBit;
            ev.arg = rng.nextBounded(
                static_cast<std::uint64_t>(num_procs));
            break;
          default:
            ev.kind = FaultKind::IrqStorm;
            ev.arg = 1 + rng.nextBounded(16);
            break;
        }
        ev.cycle = randomCycle();
        ev.proc = randomProc();
        plan.events.push_back(ev);
    }

    plan.normalize();
    return plan;
}

} // namespace fb::fault
