/**
 * @file
 * FaultInjector: interprets a FaultPlan against a running machine.
 *
 * The injector is the only component that mutates state from a plan;
 * the plan itself stays immutable so a single plan can drive many
 * differential variants. Each cycle the machine calls beginCycle(),
 * which applies register corruption due this cycle, then queries the
 * per-processor predicates (frozen / killsDue / stormActive). The
 * injector also implements the network's ReadyPulseFilter hook, so
 * drop-pulse windows hide a processor's broadcast signal from every
 * AND input without the barrier library depending on fb::fault.
 */

#ifndef FB_FAULT_INJECTOR_HH
#define FB_FAULT_INJECTOR_HH

#include <cstdint>
#include <vector>

#include "barrier/network.hh"
#include "fault/plan.hh"
#include "snapshot/codec.hh"

namespace fb::fault
{

/** Injection counters, reported in RunResult and by the tools. */
struct InjectorStats
{
    std::uint64_t pulseDropCycles = 0; ///< proc-cycles of hidden pulses
    std::uint64_t bitsFlipped = 0;     ///< tag/mask corruption events
    std::uint64_t kills = 0;
    std::uint64_t freezes = 0;         ///< freeze events (any duration)
    std::uint64_t forcedInterrupts = 0;
};

class FaultInjector : public barrier::ReadyPulseFilter
{
  public:
    FaultInjector(const FaultPlan &plan, int num_procs);

    /**
     * Start cycle @p now: corrupt tag/mask registers for flip events
     * due this cycle (the unit's ECC shadow corrects them at the next
     * network evaluation, counting the correction).
     */
    void beginCycle(std::uint64_t now, barrier::BarrierNetwork &net);

    /** Processors whose Kill event fires at @p now (each reported
     * exactly once). */
    std::vector<int> killsDue(std::uint64_t now);

    /** True while a Freeze window covers @p now for @p p. */
    bool frozen(int p, std::uint64_t now) const;

    /** True if @p p has a Freeze event with arg 0 whose cycle has
     * been reached: the processor will never run again. */
    bool frozenForever(int p, std::uint64_t now) const;

    /** True while an IrqStorm window covers @p now for @p p. */
    bool stormActive(int p, std::uint64_t now) const;

    // ReadyPulseFilter: hide the broadcast pulse during drop windows.
    bool suppress(int p, std::uint64_t now) const override;

    /**
     * True while any scheduled event has not yet fired or a transient
     * window is still open. The machine refuses to diagnose deadlock
     * while this holds: a no-progress cycle during a drop window is
     * the fault's intended effect, not a wedge.
     */
    bool pendingActivity(std::uint64_t now) const;

    /**
     * Earliest cycle after @p now at which the injector changes
     * machine-visible behaviour (UINT64_MAX = never). Inside an open
     * drop/storm window every cycle carries per-cycle effects, so the
     * answer is now + 1; an open freeze window next matters when it
     * closes; unfired events matter at their scheduled cycle. Used by
     * the fast-forward core — cycles strictly between now and the
     * returned value see beginCycle()/killsDue() as pure no-ops and
     * all the frozen/storm predicates as constant.
     */
    std::uint64_t nextActivityCycle(std::uint64_t now) const;

    InjectorStats &stats() { return _stats; }
    const InjectorStats &stats() const { return _stats; }

    /**
     * Serialize the plan cursors (which kills/flips have fired) and
     * the counters. The plan itself is not captured: the host rebuilds
     * the injector from the same FaultPlan, which the snapshot config
     * fingerprint pins.
     */
    void encodeState(snapshot::Encoder &e) const;

    /** Restore state captured with encodeState(). */
    bool decodeState(snapshot::Decoder &d);

  private:
    /** End cycle (exclusive) of a windowed event; fatal freezes and
     * instantaneous events have their natural extents. */
    static std::uint64_t windowEnd(const FaultEvent &ev);

    FaultPlan _plan;  ///< normalized copy
    int _numProcs;
    std::vector<bool> _killReported;  ///< per-event, Kill only
    std::vector<bool> _flipApplied;   ///< per-event, flips only
    InjectorStats _stats;
};

} // namespace fb::fault

#endif // FB_FAULT_INJECTOR_HH
